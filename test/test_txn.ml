module Engine = Dsim.Engine
module Network = Dsim.Network
module Txn = Replication.Txn
module Replica = Replication.Replica
module Lock_manager = Replication.Lock_manager
module Coordinator = Replication.Coordinator

type ctx = {
  engine : Engine.t;
  net : Replication.Message.t Network.t;
  locks : Lock_manager.t;
  m1 : Txn.manager;
  m2 : Txn.manager;
}

let setup ?(seed = 42) () =
  let proto = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ()) in
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n:10 () in
  let _replicas = Array.init 8 (fun site -> Replica.create ~site ~net ()) in
  let locks = Lock_manager.create ~engine in
  let m1 = Txn.create_manager ~site:8 ~net ~proto ~locks () in
  let m2 = Txn.create_manager ~site:9 ~net ~proto ~locks () in
  { engine; net; locks; m1; m2 }

let commit_sync ctx txn =
  let result = ref None in
  Txn.commit txn (fun o -> result := Some o);
  Engine.run ctx.engine;
  match !result with
  | Some o -> o
  | None -> Alcotest.fail "commit did not complete"

let read_sync ctx txn key =
  let result = ref `Pending in
  Txn.read txn ~key (fun v -> result := `Done v);
  Engine.run ctx.engine;
  match !result with
  | `Done v -> v
  | `Pending -> Alcotest.fail "read did not complete"

let committed o = match o with Txn.Committed -> true | Txn.Aborted _ -> false

let test_empty_commit () =
  let ctx = setup () in
  let t = Txn.begin_txn ctx.m1 in
  Alcotest.(check bool) "committed" true (committed (commit_sync ctx t));
  Alcotest.(check bool) "finished" true (Txn.is_finished t);
  Alcotest.(check int) "counted" 1 (Txn.committed ctx.m1)

let test_write_then_read_other_txn () =
  let ctx = setup () in
  let t1 = Txn.begin_txn ctx.m1 in
  Txn.write t1 ~key:1 ~value:"alpha";
  Txn.write t1 ~key:2 ~value:"beta";
  Alcotest.(check bool) "committed" true (committed (commit_sync ctx t1));
  let t2 = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "k1" (Some "alpha") (read_sync ctx t2 1);
  Alcotest.(check (option string)) "k2" (Some "beta") (read_sync ctx t2 2);
  Txn.abort t2

let test_read_your_writes () =
  let ctx = setup () in
  let t = Txn.begin_txn ctx.m1 in
  Txn.write t ~key:5 ~value:"mine";
  Alcotest.(check (option string)) "sees own write" (Some "mine")
    (read_sync ctx t 5);
  Txn.abort t

let test_repeatable_read () =
  let ctx = setup () in
  (* Commit an initial value. *)
  let t0 = Txn.begin_txn ctx.m1 in
  Txn.write t0 ~key:1 ~value:"v0";
  ignore (commit_sync ctx t0);
  (* t1 reads it and keeps a shared lock; later reads return the cache. *)
  let t1 = Txn.begin_txn ctx.m1 in
  Alcotest.(check (option string)) "first read" (Some "v0") (read_sync ctx t1 1);
  Alcotest.(check (option string)) "repeatable" (Some "v0") (read_sync ctx t1 1);
  Txn.abort t1

let test_buffered_write_invisible_until_commit () =
  let ctx = setup () in
  let t1 = Txn.begin_txn ctx.m1 in
  Txn.write t1 ~key:3 ~value:"hidden";
  (* A reader on the other manager sees nothing yet. *)
  let t2 = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "not visible" (Some "") (read_sync ctx t2 3);
  Txn.abort t2;
  Alcotest.(check bool) "now commits" true (committed (commit_sync ctx t1));
  let t3 = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "visible after commit" (Some "hidden")
    (read_sync ctx t3 3);
  Txn.abort t3

let test_abort_discards () =
  let ctx = setup () in
  let t = Txn.begin_txn ctx.m1 in
  Txn.write t ~key:4 ~value:"doomed";
  Txn.abort t;
  Alcotest.(check bool) "finished" true (Txn.is_finished t);
  Alcotest.(check int) "aborted count" 1 (Txn.aborted ctx.m1);
  let t2 = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "nothing written" (Some "") (read_sync ctx t2 4);
  Txn.abort t2

let test_atomic_abort_when_no_write_quorum () =
  let ctx = setup () in
  (* One crash per physical level: no write quorum anywhere, reads fine. *)
  Network.crash ctx.net 0;
  Network.crash ctx.net 3;
  let t = Txn.begin_txn ctx.m1 in
  Txn.write t ~key:1 ~value:"a";
  Txn.write t ~key:2 ~value:"b";
  (match commit_sync ctx t with
  | Txn.Aborted _ -> ()
  | Txn.Committed -> Alcotest.fail "must abort without write quorums");
  (* Neither key leaked. *)
  let t2 = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "k1 clean" (Some "") (read_sync ctx t2 1);
  Alcotest.(check (option string)) "k2 clean" (Some "") (read_sync ctx t2 2);
  Txn.abort t2;
  (* No staged residue on any replica store either way: aborts were sent. *)
  Engine.run ctx.engine

let test_version_phase_failure_aborts () =
  let ctx = setup () in
  (* Kill all of level 1 after lock acquisition is irrelevant — kill now:
     reads (and hence version phase) impossible. *)
  List.iter (Network.crash ctx.net) [ 0; 1; 2 ];
  let t = Txn.begin_txn ctx.m1 in
  Txn.write t ~key:1 ~value:"x";
  match commit_sync ctx t with
  | Txn.Aborted reason ->
    Alcotest.(check bool) "version phase blamed" true
      (reason = "version phase failed")
  | Txn.Committed -> Alcotest.fail "cannot commit without read quorum"

let test_writer_waits_for_reader () =
  let ctx = setup () in
  let reader = Txn.begin_txn ctx.m1 in
  Alcotest.(check (option string)) "read" (Some "") (read_sync ctx reader 7);
  (* Writer's commit must block on the shared lock. *)
  let writer = Txn.begin_txn ctx.m2 in
  Txn.write writer ~key:7 ~value:"w";
  let outcome = ref None in
  Txn.commit writer (fun o -> outcome := Some o);
  (* Run well past the network phases but short of the lock deadline. *)
  Engine.run ~until:(Engine.now ctx.engine +. 50.0) ctx.engine;
  Alcotest.(check bool) "writer blocked while reader active" true (!outcome = None);
  Txn.abort reader;
  Engine.run ctx.engine;
  (match !outcome with
  | Some o -> Alcotest.(check bool) "writer commits after release" true (committed o)
  | None -> Alcotest.fail "writer still blocked after reader aborted")

let test_upgrade_conflict_aborts_one () =
  let ctx = setup () in
  let a = Txn.begin_txn ctx.m1 in
  let b = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "a reads" (Some "") (read_sync ctx a 2);
  Alcotest.(check (option string)) "b reads" (Some "") (read_sync ctx b 2);
  Txn.write a ~key:2 ~value:"a";
  Txn.write b ~key:2 ~value:"b";
  let oa = ref None and ob = ref None in
  Txn.commit a (fun o -> oa := Some o);
  Txn.commit b (fun o -> ob := Some o);
  Engine.run ctx.engine;
  match (!oa, !ob) with
  | Some a_out, Some b_out ->
    Alcotest.(check bool) "first upgrader commits" true (committed a_out);
    Alcotest.(check bool) "second upgrader aborts" false (committed b_out)
  | _ -> Alcotest.fail "both transactions must terminate"

let test_deadlock_resolved_by_timeout () =
  let ctx = setup () in
  let a = Txn.begin_txn ctx.m1 in
  let b = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "a reads k1" (Some "") (read_sync ctx a 1);
  Alcotest.(check (option string)) "b reads k2" (Some "") (read_sync ctx b 2);
  Txn.write a ~key:2 ~value:"a";
  Txn.write b ~key:1 ~value:"b";
  let oa = ref None and ob = ref None in
  Txn.commit a (fun o -> oa := Some o);
  Txn.commit b (fun o -> ob := Some o);
  Engine.run ctx.engine;
  (* Cross-key S/X cycle: both wait, the lock timeout fires, both abort
     (no victim selection — conservative), and crucially both terminate. *)
  (match (!oa, !ob) with
  | Some _, Some _ -> ()
  | _ -> Alcotest.fail "deadlocked transactions must terminate");
  Alcotest.(check bool) "locks fully released" true
    (Lock_manager.holders ctx.locks ~key:1 = None
    && Lock_manager.holders ctx.locks ~key:2 = None)

let test_read_modify_write_same_key () =
  (* The S->X upgrade path without contention. *)
  let ctx = setup () in
  let t0 = Txn.begin_txn ctx.m1 in
  Txn.write t0 ~key:6 ~value:"10";
  ignore (commit_sync ctx t0);
  let t = Txn.begin_txn ctx.m1 in
  (match read_sync ctx t 6 with
  | Some v -> Txn.write t ~key:6 ~value:(string_of_int (int_of_string v + 5))
  | None -> Alcotest.fail "read failed");
  Alcotest.(check bool) "commits through upgrade" true
    (committed (commit_sync ctx t));
  let t2 = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "incremented" (Some "15") (read_sync ctx t2 6);
  Txn.abort t2

let test_use_after_finish_rejected () =
  let ctx = setup () in
  let t = Txn.begin_txn ctx.m1 in
  Txn.abort t;
  Alcotest.check_raises "read after finish"
    (Invalid_argument "Txn.read: transaction finished") (fun () ->
      Txn.read t ~key:1 (fun _ -> ()));
  Alcotest.check_raises "write after finish"
    (Invalid_argument "Txn.write: transaction finished") (fun () ->
      Txn.write t ~key:1 ~value:"x");
  Alcotest.check_raises "commit after finish"
    (Invalid_argument "Txn.commit: transaction finished") (fun () ->
      Txn.commit t (fun _ -> ()))

let test_commit_with_partial_crashes () =
  let ctx = setup () in
  (* Crash one replica of level 2: level 1 still forms a write quorum. *)
  Network.crash ctx.net 7;
  let t = Txn.begin_txn ctx.m1 in
  Txn.write t ~key:1 ~value:"resilient";
  Alcotest.(check bool) "commits" true (committed (commit_sync ctx t));
  let t2 = Txn.begin_txn ctx.m2 in
  Alcotest.(check (option string)) "visible" (Some "resilient") (read_sync ctx t2 1);
  Txn.abort t2

let test_many_sequential_txns () =
  let ctx = setup () in
  for i = 1 to 20 do
    let t = Txn.begin_txn ctx.m1 in
    Txn.write t ~key:(i mod 3) ~value:(Printf.sprintf "v%d" i);
    Alcotest.(check bool) "commits" true (committed (commit_sync ctx t))
  done;
  Alcotest.(check int) "20 committed" 20 (Txn.committed ctx.m1);
  let t = Txn.begin_txn ctx.m2 in
  (* Key 0 was last written by i=18. *)
  Alcotest.(check (option string)) "latest value" (Some "v18") (read_sync ctx t 0);
  Txn.abort t

let suite =
  [
    Alcotest.test_case "empty commit" `Quick test_empty_commit;
    Alcotest.test_case "write then read from another txn" `Quick
      test_write_then_read_other_txn;
    Alcotest.test_case "read-your-writes" `Quick test_read_your_writes;
    Alcotest.test_case "repeatable read" `Quick test_repeatable_read;
    Alcotest.test_case "buffered writes invisible until commit" `Quick
      test_buffered_write_invisible_until_commit;
    Alcotest.test_case "abort discards" `Quick test_abort_discards;
    Alcotest.test_case "atomic abort without write quorum" `Quick
      test_atomic_abort_when_no_write_quorum;
    Alcotest.test_case "version-phase failure aborts" `Quick
      test_version_phase_failure_aborts;
    Alcotest.test_case "writer waits for reader (2PL)" `Quick
      test_writer_waits_for_reader;
    Alcotest.test_case "upgrade conflict aborts one" `Quick
      test_upgrade_conflict_aborts_one;
    Alcotest.test_case "deadlock resolved by timeout" `Quick
      test_deadlock_resolved_by_timeout;
    Alcotest.test_case "read-modify-write same key" `Quick
      test_read_modify_write_same_key;
    Alcotest.test_case "use after finish rejected" `Quick
      test_use_after_finish_rejected;
    Alcotest.test_case "commit with partial crashes" `Quick
      test_commit_with_partial_crashes;
    Alcotest.test_case "many sequential transactions" `Quick
      test_many_sequential_txns;
  ]
