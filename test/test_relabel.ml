(* Position->site relabeling: quorum translation, remap validation, and
   the deliberate fork-shares-the-map contract promotion relies on. *)

module Protocol = Quorum.Protocol
module Relabel = Quorum.Relabel
module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

let fig1 () = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ())

let all_alive n =
  let s = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.add s i
  done;
  s

let test_identity_passthrough () =
  let inner = fig1 () in
  let n = Protocol.universe_size inner in
  let t = Relabel.make ~universe:(n + 2) inner in
  let p = Relabel.pack t in
  Alcotest.(check int) "universe grows by the spares" (n + 2)
    (Protocol.universe_size p);
  Alcotest.(check int) "positions = inner universe" n (Relabel.positions t);
  for i = 0 to n - 1 do
    Alcotest.(check int) "identity map" i (Relabel.site_of t ~position:i)
  done;
  Alcotest.(check bool) "spare holds no position" true
    (Relabel.position_of t ~site:n = None);
  let rng = Rng.create 1 in
  match Protocol.read_quorum p ~alive:(all_alive (n + 2)) ~rng with
  | None -> Alcotest.fail "identity relabel must yield a quorum"
  | Some q ->
    Alcotest.(check bool) "identity quorum never names a spare" false
      (Bitset.mem q n || Bitset.mem q (n + 1))

let test_remap_translates_quorums () =
  let inner = fig1 () in
  let n = Protocol.universe_size inner in
  let t = Relabel.make ~universe:(n + 1) inner in
  let p = Relabel.pack t in
  let spare = n in
  Relabel.remap t ~position:0 ~site:spare;
  Alcotest.(check int) "position 0 now maps to the spare" spare
    (Relabel.site_of t ~position:0);
  Alcotest.(check bool) "old occupant released" true
    (Relabel.position_of t ~site:0 = None);
  let rng = Rng.create 1 in
  (* with the old occupant dead, quorums through position 0 must use the
     spare *)
  let alive = all_alive (n + 1) in
  Bitset.remove alive 0;
  (match Protocol.write_quorum p ~alive ~rng with
  | None -> Alcotest.fail "write quorum must survive the remap"
  | Some q ->
    Alcotest.(check bool) "never names the dead old site" false
      (Bitset.mem q 0));
  (* and with the SPARE dead, position 0 is unavailable *)
  let alive = all_alive (n + 1) in
  Bitset.remove alive spare;
  match Protocol.read_quorum p ~alive ~rng with
  | None -> ()
  | Some q ->
    (* fig. 1's tree can route reads around single positions; what must
       never happen is a quorum naming the dead spare *)
    Alcotest.(check bool) "never names the dead spare" false
      (Bitset.mem q spare)

let test_remap_validation () =
  let inner = fig1 () in
  let n = Protocol.universe_size inner in
  let t = Relabel.make ~universe:(n + 1) inner in
  Alcotest.check_raises "occupied site rejected"
    (Invalid_argument "Relabel.remap: site already holds a position")
    (fun () -> Relabel.remap t ~position:0 ~site:1);
  (* a no-op remap (site already holds THIS position) is fine *)
  Relabel.remap t ~position:0 ~site:0;
  Alcotest.(check bool) "universe too small rejected" true
    (try
       ignore (Relabel.make ~universe:(n - 1) inner);
       false
     with Invalid_argument _ -> true)

(* Promotion's atomicity hinges on fork SHARING the map: a coordinator
   forked before a remap must see quorums through the new site
   afterwards.  This is a documented deviation from the usual fork
   contract. *)
let test_fork_shares_the_map () =
  let inner = fig1 () in
  let n = Protocol.universe_size inner in
  let t = Relabel.make ~universe:(n + 1) inner in
  let p = Relabel.pack t in
  let forked = Protocol.fork p in
  Relabel.remap t ~position:0 ~site:n;
  let rng = Rng.create 1 in
  let alive = all_alive (n + 1) in
  Bitset.remove alive 0;
  match Protocol.write_quorum forked ~alive ~rng with
  | None -> Alcotest.fail "forked protocol must see the remap"
  | Some q ->
    Alcotest.(check bool) "fork sees the new occupant" true (Bitset.mem q n);
    Alcotest.(check bool) "fork dropped the old occupant" false
      (Bitset.mem q 0)

let test_level_plan_translated () =
  let inner = fig1 () in
  let n = Protocol.universe_size inner in
  let t = Relabel.make ~universe:(n + 1) inner in
  let p = Relabel.pack t in
  match Protocol.read_levels p with
  | None -> Alcotest.fail "fig. 1's tree has a level plan"
  | Some plan ->
    Relabel.remap t ~position:0 ~site:n;
    let rng = Rng.create 1 in
    (* fig. 1's first physical level holds positions 0..2; with the old
       occupant AND its level-mates dead, the level can only be served
       by the promoted spare *)
    let alive = all_alive (n + 1) in
    Bitset.remove alive 0;
    Bitset.remove alive 1;
    Bitset.remove alive 2;
    let found = ref false in
    for level = 0 to plan.Protocol.n_levels - 1 do
      let site = plan.Protocol.level_site ~alive ~rng ~level in
      Alcotest.(check bool) "plan never names a dead site" false
        (site = 0 || site = 1 || site = 2);
      if site = n then found := true
    done;
    Alcotest.(check bool) "plan names the promoted spare" true !found

let suite =
  [
    Alcotest.test_case "identity passthrough" `Quick test_identity_passthrough;
    Alcotest.test_case "remap translates quorums" `Quick
      test_remap_translates_quorums;
    Alcotest.test_case "remap validation" `Quick test_remap_validation;
    Alcotest.test_case "fork shares the position map" `Quick
      test_fork_shares_the_map;
    Alcotest.test_case "level plan translated" `Quick
      test_level_plan_translated;
  ]
