(* The batching execution layer: multi-key quorum rounds, batched 2PC,
   WAL group commit, message coalescing and the pipelined client loop —
   plus the determinism contracts (batch size 1 is byte-identical to
   unbatched; batched runs are reproducible per seed; group commit under
   amnesia churn stays consistent). *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Coordinator = Replication.Coordinator
module Replica = Replication.Replica
module Harness = Replication.Harness
module Timestamp = Replication.Timestamp
module Wal = Replication.Wal
module Batching = Eval.Batching
module Consistency = Eval.Consistency
module Rng = Dsutil.Rng

(* --- coordinator-level batch semantics ---------------------------------- *)

let setup ?(spec = "1-3-5") ?(seed = 42) () =
  let tree = Arbitrary.Tree.of_spec spec in
  let proto = Arbitrary.Quorums.protocol tree in
  let n = Arbitrary.Tree.n tree in
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n:(n + 1) () in
  let _replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
  let coord = Coordinator.create ~site:n ~net ~proto () in
  (engine, net, coord, n)

let test_write_batch_then_read_batch () =
  let engine, _, coord, _ = setup () in
  let writes = [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ] in
  let wrote = ref [] in
  Coordinator.write_batch coord ~writes (fun rs -> wrote := rs);
  Engine.run engine;
  Alcotest.(check int) "every key acked" 4 (List.length !wrote);
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "committed" true (r <> None))
    !wrote;
  let read = ref [] in
  Coordinator.read_batch coord ~keys:[ 0; 1; 2; 3 ] (fun rs -> read := rs);
  Engine.run engine;
  List.iter2
    (fun (k, v) (k', r) ->
      Alcotest.(check int) "request order preserved" k k';
      match r with
      | Some { Coordinator.value; _ } ->
        Alcotest.(check string) "batched read returns the write" v value
      | None -> Alcotest.fail "batched read failed")
    writes !read;
  let m = Coordinator.metrics coord in
  Alcotest.(check int) "per-key read accounting" 4 m.Coordinator.reads_ok;
  Alcotest.(check int) "per-key write accounting" 4 m.Coordinator.writes_ok;
  Alcotest.(check int) "two multi-key batches" 2 m.Coordinator.batches

let test_duplicate_key_last_writer_wins () =
  let engine, _, coord, _ = setup () in
  let result = ref [] in
  Coordinator.write_batch coord
    ~writes:[ (5, "first"); (6, "x"); (5, "second") ]
    (fun rs -> result := rs);
  Engine.run engine;
  (match !result with
  | [ (5, Some ts1); (6, Some _); (5, Some ts2) ] ->
    Alcotest.(check bool) "later occurrence stamped newer" true
      (Timestamp.newer_than ts2 ts1)
  | _ -> Alcotest.fail "unexpected result shape");
  let got = ref None in
  Coordinator.read coord ~key:5 (fun r -> got := r);
  Engine.run engine;
  match !got with
  | Some { Coordinator.value; _ } ->
    Alcotest.(check string) "last writer wins within the batch" "second" value
  | None -> Alcotest.fail "read failed"

let test_batch_failure_reports_every_key () =
  let engine, net, coord, n = setup () in
  for site = 0 to n - 1 do
    Network.crash net site
  done;
  let wrote = ref [] and read = ref [] in
  Coordinator.write_batch coord ~writes:[ (0, "x"); (1, "y") ] (fun rs ->
      wrote := rs);
  Coordinator.read_batch coord ~keys:[ 2; 3; 4 ] (fun rs -> read := rs);
  Engine.run engine;
  Alcotest.(check int) "write batch reports every key" 2 (List.length !wrote);
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "write key failed" true (r = None))
    !wrote;
  Alcotest.(check int) "read batch reports every key" 3 (List.length !read);
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "read key failed" true (r = None))
    !read;
  let m = Coordinator.metrics coord in
  Alcotest.(check int) "per-key failure accounting" 3 m.Coordinator.reads_failed;
  Alcotest.(check int) "per-key write failures" 2 m.Coordinator.writes_failed

let test_singleton_and_empty_batches_delegate () =
  let engine, _, coord, _ = setup () in
  let empty = ref None and single = ref [] in
  Coordinator.read_batch coord ~keys:[] (fun rs -> empty := Some rs);
  Alcotest.(check bool) "empty batch answers synchronously" true
    (!empty = Some []);
  Coordinator.write_batch coord ~writes:[ (7, "solo") ] (fun rs -> single := rs);
  Engine.run engine;
  (match !single with
  | [ (7, Some _) ] -> ()
  | _ -> Alcotest.fail "singleton write did not delegate cleanly");
  let m = Coordinator.metrics coord in
  Alcotest.(check int) "singleton is not counted as a batch" 0
    m.Coordinator.batches;
  Alcotest.(check int) "but is a plain write" 1 m.Coordinator.writes_ok

(* --- harness-level determinism and throughput --------------------------- *)

let test_batch1_byte_identical_to_unbatched () =
  let plain, batch1 =
    Batching.pair ~knobs:Batching.identity_knobs
      ~name:Arbitrary.Config.Arbitrary ~n:9 ~ops:120 ~seed:3 ()
  in
  Alcotest.(check string) "batch=1/pipeline=1 fingerprint"
    (Batching.fingerprint (Harness.run plain))
    (Batching.fingerprint (Harness.run batch1))

let test_batched_run_deterministic () =
  let _, batched =
    Batching.pair ~name:Arbitrary.Config.Arbitrary ~n:9 ~ops:160 ~seed:11 ()
  in
  Alcotest.(check string) "same seed, same batched run"
    (Batching.fingerprint (Harness.run batched))
    (Batching.fingerprint (Harness.run batched))

let test_batching_reduces_messages () =
  let plain, batched =
    Batching.pair ~name:Arbitrary.Config.Arbitrary ~n:9 ~ops:200 ~seed:5 ()
  in
  let r_u = Harness.run plain and r_b = Harness.run batched in
  let total r = r.Harness.reads_ok + r.Harness.writes_ok in
  Alcotest.(check int) "unbatched completes everything" 200 (total r_u);
  Alcotest.(check int) "batched completes everything" 200 (total r_b);
  Alcotest.(check int) "no safety violations" 0
    (r_u.Harness.safety_violations + r_b.Harness.safety_violations);
  Alcotest.(check bool) "multi-key batches executed" true
    (r_b.Harness.batches > 0);
  Alcotest.(check bool) "envelopes coalesced per-op messages" true
    (r_b.Harness.coalesced_ops > 0);
  Alcotest.(check bool)
    (Printf.sprintf "messages per op %.1f -> %.1f (want < half)"
       (Harness.messages_per_op r_u)
       (Harness.messages_per_op r_b))
    true
    (Harness.messages_per_op r_b < Harness.messages_per_op r_u /. 2.0)

(* Satellite gate: group commit under Sync_on_prepare with amnesia
   crashes landing mid-batch — staged batches must replay (or vanish)
   atomically enough that no read ever observes a regression. *)
let test_group_commit_amnesia_consistent () =
  let proto =
    Eval.Config_metrics.protocol_of Arbitrary.Config.Arbitrary ~n:9
  in
  let s = Harness.default_scenario ~proto in
  let failures =
    Dsim.Failure.random_crash_recovery ~rng:(Rng.create 21) ~n:9
      ~horizon:2500.0 ~mtbf:150.0 ~mttr:40.0
  in
  let run group_commit =
    Harness.run
      {
        s with
        Harness.n_clients = 2;
        ops_per_client = 24;
        think_time = 3.0;
        seed = 21;
        failures;
        horizon = 3000.0;
        warmup = 1.0;
        crash_mode = Dsim.Network.Amnesia;
        wal = Wal.Sync_on_prepare;
        check_consistency = true;
        batching = Some { Harness.batch_size = 8; group_commit; pipeline = 2 };
      }
  in
  let grouped = run true in
  Alcotest.(check int) "no safety violations" 0
    grouped.Harness.safety_violations;
  let c = Consistency.check grouped.Harness.spans in
  Alcotest.(check bool) "trace-checker finds no violation" true
    (Consistency.ok c);
  Alcotest.(check bool) "batches survived the churn" true
    (grouped.Harness.batches > 0);
  Alcotest.(check bool) "group commit syncs charged" true
    (grouped.Harness.wal_syncs > 0);
  let plain = run false in
  Alcotest.(check int) "consistent without group commit too" 0
    plain.Harness.safety_violations;
  Alcotest.(check bool) "grouping never costs extra syncs" true
    (grouped.Harness.wal_syncs <= plain.Harness.wal_syncs)

let suite =
  [
    Alcotest.test_case "write_batch then read_batch round-trips" `Quick
      test_write_batch_then_read_batch;
    Alcotest.test_case "duplicate key: last writer wins" `Quick
      test_duplicate_key_last_writer_wins;
    Alcotest.test_case "batch failure reports every key" `Quick
      test_batch_failure_reports_every_key;
    Alcotest.test_case "singleton and empty batches delegate" `Quick
      test_singleton_and_empty_batches_delegate;
    Alcotest.test_case "batch=1 is byte-identical to unbatched" `Quick
      test_batch1_byte_identical_to_unbatched;
    Alcotest.test_case "batched runs are deterministic" `Quick
      test_batched_run_deterministic;
    Alcotest.test_case "batching reduces messages per op" `Quick
      test_batching_reduces_messages;
    Alcotest.test_case "group commit consistent under amnesia churn" `Quick
      test_group_commit_amnesia_consistent;
  ]
