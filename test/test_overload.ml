(* Overload-protection integration tests: replica admission control,
   coordinator Busy handling, the retry-budget and breaker wired into the
   RPC layer, the deadline-vs-retry boundary, the harness overload
   scenario, and the eval campaign's metastable gate. *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Latency = Dsim.Latency
module Message = Replication.Message
module Replica = Replication.Replica
module Coordinator = Replication.Coordinator
module Quorum_rpc = Replication.Quorum_rpc
module Harness = Replication.Harness
module Protocol = Quorum.Protocol

let fig1_proto () = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ())

(* -- Replica admission control ------------------------------------------- *)

let test_replica_sheds_above_watermark () =
  let engine = Engine.create ~seed:1 () in
  let n = 2 in
  let client = 2 in
  let net = Network.create ~engine ~n:(n + 1) ~latency:(Latency.Constant 0.0) () in
  Network.set_service net ~site:0 ~service_time:5.0 ();
  let replica =
    Replica.create ~site:0 ~net
      ~admission:(Replica.admission ~shed_watermark:1 ~universe:n ())
      ()
  in
  let busy = ref 0 and replies = ref 0 in
  Network.set_handler net ~site:client (fun ~src:_ msg ->
      match msg with
      | Message.Busy _ -> incr busy
      | Message.Read_reply _ -> incr replies
      | _ -> ());
  for op = 1 to 5 do
    Network.send net ~src:client ~dst:0 (Message.Read_request { op; key = 0 })
  done;
  Engine.run engine;
  (* Service order: each delivery sees the queue behind it.  The early
     deliveries find > 1 message still waiting and shed; the tail is
     served. *)
  Alcotest.(check bool) "some requests shed" true (!busy > 0);
  Alcotest.(check bool) "some requests served" true (!replies > 0);
  Alcotest.(check int) "all accounted" 5 (!busy + !replies);
  Alcotest.(check int) "sheds counter matches" !busy (Replica.sheds replica)

let test_replica_peer_reads_never_shed () =
  (* Same load, but from a peer replica site (src < universe): the
     priority lane must serve every request, shedding nothing. *)
  let engine = Engine.create ~seed:1 () in
  let n = 2 in
  let net = Network.create ~engine ~n:(n + 1) ~latency:(Latency.Constant 0.0) () in
  Network.set_service net ~site:0 ~service_time:5.0 ();
  let replica =
    Replica.create ~site:0 ~net
      ~admission:(Replica.admission ~shed_watermark:1 ~universe:n ())
      ()
  in
  let replies = ref 0 in
  Network.set_handler net ~site:1 (fun ~src:_ msg ->
      match msg with Message.Read_reply _ -> incr replies | _ -> ());
  for op = 1 to 5 do
    Network.send net ~src:1 ~dst:0 (Message.Read_request { op; key = 0 })
  done;
  Engine.run engine;
  Alcotest.(check int) "peer catch-up reads all served" 5 !replies;
  Alcotest.(check int) "nothing shed" 0 (Replica.sheds replica)

let test_admission_rejects_negative_watermark () =
  Alcotest.check_raises "negative watermark"
    (Invalid_argument "Replica.admission: negative shed watermark")
    (fun () -> ignore (Replica.admission ~shed_watermark:(-1) ()))

(* -- Quorum_rpc: deadline-vs-retry boundary ------------------------------ *)

(* Replicas absent (no handlers): phases always time out, so the retry
   cadence is deterministic: phase timeout T, jitter-free backoff B.  The
   first retry would be issued at exactly T + B. *)
let rpc_messages_with_deadline deadline =
  let proto = fig1_proto () in
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed:3 () in
  let net = Network.create ~engine ~n:(n + 1) ~latency:(Latency.Constant 0.0) () in
  let config =
    {
      Quorum_rpc.default_config with
      Quorum_rpc.timeout = 10.0;
      max_retries = 1;
      deadline;
      backoff =
        { Detect.Backoff.base = 5.0; factor = 1.0; max_delay = 5.0; jitter = 0.0 };
    }
  in
  let rpc = Quorum_rpc.create ~site:n ~net ~proto ~config () in
  let result = ref `Pending in
  Quorum_rpc.query rpc ~key:0 (fun r -> result := `Done r);
  Engine.run engine;
  (match !result with
  | `Done None -> ()
  | `Done (Some _) -> Alcotest.fail "query cannot succeed without replicas"
  | `Pending -> Alcotest.fail "query never resolved");
  (Network.counters net).Network.sent

let test_rpc_deadline_boundary () =
  (* Retry would start at 10 + 5 = op start + deadline exactly: the >=
     comparison must fail the operation without issuing it. *)
  let at_boundary = rpc_messages_with_deadline 15.0 in
  (* A hair more deadline budget and the retry is issued: strictly more
     messages hit the network. *)
  let past_boundary = rpc_messages_with_deadline 15.0001 in
  Alcotest.(check int) "boundary retry suppressed: one fan-out only"
    past_boundary (2 * at_boundary);
  Alcotest.(check bool) "sanity: someone sent something" true (at_boundary > 0)

(* -- Budget and breaker at the RPC layer --------------------------------- *)

let test_rpc_budget_suppresses_retries () =
  let proto = fig1_proto () in
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed:3 () in
  let net = Network.create ~engine ~n:(n + 1) ~latency:(Latency.Constant 0.0) () in
  let budget = Detect.Budget.create ~config:{ Detect.Budget.ratio = 0.0; burst = 1.0 } () in
  (* Drain the single banked token so the very first retry is refused. *)
  Alcotest.(check bool) "drain" true (Detect.Budget.try_retry budget);
  let config =
    { Quorum_rpc.default_config with Quorum_rpc.timeout = 10.0; max_retries = 5 }
  in
  let rpc = Quorum_rpc.create ~site:n ~net ~proto ~budget ~config () in
  let result = ref `Pending in
  Quorum_rpc.query rpc ~key:0 (fun r -> result := `Done r);
  Engine.run engine;
  Alcotest.(check bool) "failed fast" true (!result = `Done None);
  Alcotest.(check int) "retry suppressed" 1 (Quorum_rpc.retries_suppressed rpc);
  Alcotest.(check int) "budget counted it" 1 (Detect.Budget.suppressed budget)

let test_rpc_breaker_steers_quorums () =
  (* Trip the breaker for site 0 by hand: quorum assembly must avoid it,
     so a query sends no message to site 0 while still succeeding. *)
  let proto = fig1_proto () in
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed:3 () in
  let net = Network.create ~engine ~n:(n + 1) ~latency:(Latency.Constant 0.0) () in
  let replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
  ignore replicas;
  let breaker =
    Detect.Breaker.create
      ~config:{ Detect.Breaker.default_config with Detect.Breaker.threshold = 1 }
      ~n
      ~now:(fun () -> Engine.now engine)
      ()
  in
  Alcotest.(check bool) "tripped" true (Detect.Breaker.record_failure breaker 0);
  let rpc = Quorum_rpc.create ~site:n ~net ~proto ~breaker () in
  let result = ref `Pending in
  Quorum_rpc.query rpc ~key:0 (fun r -> result := `Done r);
  Engine.run engine;
  (match !result with
  | `Done (Some _) -> ()
  | _ -> Alcotest.fail "query should succeed away from the tripped site");
  Alcotest.(check int) "tripped site got no traffic" 0
    (Network.per_site_delivered net).(0)

let test_coordinator_busy_counts_and_retries () =
  (* One admission-controlled replica under pressure: the coordinator
     must see Busy nacks, count them, and still finish its operation. *)
  let proto = fig1_proto () in
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed:7 () in
  let net = Network.create ~engine ~n:(n + 2) () in
  let admission = Replica.admission ~shed_watermark:1 ~universe:n () in
  Array.iteri
    (fun site () ->
      Network.set_service net ~site ~service_time:2.0 ();
      ignore (Replica.create ~site ~net ~admission ()))
    (Array.make n ());
  (* A background client hammers every replica with reads so queues stay
     above the watermark while the coordinator works. *)
  let noise_site = n + 1 in
  let op = ref 10_000 in
  let rec hammer () =
    for dst = 0 to n - 1 do
      incr op;
      Network.send net ~src:noise_site ~dst
        (Message.Read_request { op = !op; key = 1 })
    done;
    if Engine.now engine < 200.0 then Engine.schedule engine ~delay:1.0 hammer
  in
  Engine.schedule engine ~delay:0.0 hammer;
  let coord =
    Coordinator.create ~site:n ~net ~proto
      ~config:{ Coordinator.default_config with Coordinator.timeout = 30.0 }
      ()
  in
  let result = ref `Pending in
  Engine.schedule engine ~delay:5.0 (fun () ->
      Coordinator.read coord ~key:0 (fun r -> result := `Done r));
  Engine.run engine;
  Alcotest.(check bool) "operation resolved" true (!result <> `Pending);
  let m = Coordinator.metrics coord in
  Alcotest.(check bool) "coordinator saw Busy nacks" true
    (m.Coordinator.busy_received > 0)

(* -- Harness overload scenario ------------------------------------------- *)

let overload_scenario () =
  let proto = fig1_proto () in
  {
    (Harness.default_scenario ~proto) with
    Harness.n_clients = 3;
    ops_per_client = 30;
    think_time = 5.0;
    horizon = 3000.0;
    seed = 11;
    coordinator =
      {
        Coordinator.default_config with
        Coordinator.timeout = 20.0;
        max_retries = 6;
      };
    overload =
      Some
        {
          Harness.overload_defaults with
          Harness.queue_capacity = 8;
          service_time = 2.0;
          shed_watermark = 2;
          retry_budget = Some Detect.Budget.default_config;
          breaker = Some Detect.Breaker.default_config;
          burst =
            Some
              {
                Harness.burst_at = 50.0;
                burst_clients = 8;
                burst_ops = 10;
                burst_think = 0.5;
              };
        };
  }

let test_harness_overload_smoke () =
  let report = Harness.run (overload_scenario ()) in
  Alcotest.(check bool) "some operations completed" true
    (report.Harness.reads_ok + report.Harness.writes_ok > 0);
  Alcotest.(check bool) "queues actually filled" true
    (report.Harness.queue_peak > 0);
  Alcotest.(check bool) "admission control engaged" true
    (report.Harness.replica_sheds > 0);
  Alcotest.(check bool) "coordinators saw the sheds" true
    (report.Harness.busy_received > 0);
  Alcotest.(check int) "overload cost no safety" 0
    report.Harness.safety_violations;
  Alcotest.(check int) "completions counted once per success"
    (report.Harness.reads_ok + report.Harness.writes_ok)
    (Array.length report.Harness.completions)

let test_harness_overload_deterministic () =
  let r1 = Harness.run (overload_scenario ()) in
  let r2 = Harness.run (overload_scenario ()) in
  Alcotest.(check bool) "same seed, same overload run" true
    (r1.Harness.reads_ok = r2.Harness.reads_ok
    && r1.Harness.writes_ok = r2.Harness.writes_ok
    && r1.Harness.replica_sheds = r2.Harness.replica_sheds
    && r1.Harness.busy_received = r2.Harness.busy_received
    && r1.Harness.retries_suppressed = r2.Harness.retries_suppressed
    && r1.Harness.overload_drops = r2.Harness.overload_drops
    && r1.Harness.breaker_trips = r2.Harness.breaker_trips
    && r1.Harness.completions = r2.Harness.completions)

let test_harness_no_overload_unchanged () =
  (* overload = None keeps the report of a plain scenario byte-identical:
     the overload counters exist but stay zero and no service queues are
     installed. *)
  let proto = fig1_proto () in
  let scenario =
    { (Harness.default_scenario ~proto) with Harness.n_clients = 2; seed = 5 }
  in
  let report = Harness.run scenario in
  Alcotest.(check int) "no sheds" 0 report.Harness.replica_sheds;
  Alcotest.(check int) "no busy" 0 report.Harness.busy_received;
  Alcotest.(check int) "no suppressed retries" 0
    report.Harness.retries_suppressed;
  Alcotest.(check int) "no overload drops" 0 report.Harness.overload_drops;
  Alcotest.(check int) "no breaker" 0 report.Harness.breaker_trips;
  Alcotest.(check int) "no queues" 0 report.Harness.queue_peak

(* -- Eval campaign gate --------------------------------------------------- *)

let test_campaign_gate () =
  let campaign = Eval.Overload.run () in
  let verdict = Eval.Overload.gate campaign in
  if not verdict.Eval.Overload.pass then
    Alcotest.failf "overload gate failed:\n%s"
      (String.concat "\n" verdict.Eval.Overload.failures);
  let naive =
    Eval.Overload.find campaign Eval.Overload.Retry_storm Eval.Overload.Naive
  in
  let prot =
    Eval.Overload.find campaign Eval.Overload.Retry_storm
      Eval.Overload.Protected
  in
  Alcotest.(check bool) "naive storm is metastable" true
    (naive.Eval.Overload.recovery <= 0.5);
  Alcotest.(check bool) "protected storm recovers" true
    (prot.Eval.Overload.recovery >= 0.9)

let suite =
  [
    Alcotest.test_case "replica: sheds above watermark" `Quick
      test_replica_sheds_above_watermark;
    Alcotest.test_case "replica: peer reads never shed" `Quick
      test_replica_peer_reads_never_shed;
    Alcotest.test_case "replica: admission validates" `Quick
      test_admission_rejects_negative_watermark;
    Alcotest.test_case "rpc: retry at deadline boundary fails" `Quick
      test_rpc_deadline_boundary;
    Alcotest.test_case "rpc: budget suppresses retries" `Quick
      test_rpc_budget_suppresses_retries;
    Alcotest.test_case "rpc: breaker steers quorums" `Quick
      test_rpc_breaker_steers_quorums;
    Alcotest.test_case "coordinator: Busy counted, op survives" `Quick
      test_coordinator_busy_counts_and_retries;
    Alcotest.test_case "harness: overload scenario smoke" `Quick
      test_harness_overload_smoke;
    Alcotest.test_case "harness: overload run deterministic" `Quick
      test_harness_overload_deterministic;
    Alcotest.test_case "harness: no overload, no counters" `Quick
      test_harness_no_overload_unchanged;
    Alcotest.test_case "eval: metastable gate holds" `Quick test_campaign_gate;
  ]
