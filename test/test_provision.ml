(* Snapshot-provisioning rejoin: chunked transfer, durable-mark resume,
   donor failover, fencing, and the terminal failed-rejoin state of the
   catch-up path. *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Failure = Dsim.Failure
module Coordinator = Replication.Coordinator
module Replica = Replication.Replica
module Message = Replication.Message
module Timestamp = Replication.Timestamp
module Store = Replication.Store
module Wal = Replication.Wal
module Protocol = Quorum.Protocol

let fig1_proto () = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ())

type ctx = {
  engine : Engine.t;
  net : Message.t Network.t;
  replicas : Replica.t array;
  coord : Coordinator.t;
  n : int;
}

let key_space = 8

let setup ?(seed = 42) ?(chunk_size = 1) ?(fence = true) ?(timeout = 10.0)
    ?obs () =
  let proto = fig1_proto () in
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n:(n + 1) () in
  Network.set_crash_mode net Network.Amnesia;
  let recovery =
    Replica.recovery ~catch_up:false
      ~provision:
        (Replica.provision ~key_space ~chunk_size ~fence ~timeout
           ~donors:(fun () -> List.init n Fun.id)
           ())
      ()
  in
  let replicas =
    Array.init n (fun site -> Replica.create ~site ~net ~recovery ?obs ())
  in
  let coord = Coordinator.create ~site:n ~net ~proto () in
  { engine; net; replicas; coord; n }

(* Seed committed state directly on every replica, bypassing the WAL: an
   amnesia crash then leaves the target genuinely cold (nothing to
   replay), so everything it comes back with is attributable to the
   provisioning transfer. *)
let seed_stores ctx =
  Array.iter
    (fun r ->
      let store = Replica.store r in
      for key = 0 to key_space - 1 do
        ignore
          (Store.install_flat store ~key ~version:1 ~sid:0
             ~value:(Printf.sprintf "v%d" key))
      done)
    ctx.replicas

let check_restored ctx site =
  let store = Replica.store ctx.replicas.(site) in
  for key = 0 to key_space - 1 do
    Alcotest.(check string)
      (Printf.sprintf "key %d restored" key)
      (Printf.sprintf "v%d" key)
      (snd (Store.read store ~key))
  done

(* A cold amnesia rejoin rebuilds the whole store from a donor's chunks
   plus the WAL tail — no per-key quorum reads. *)
let test_basic_provisioning_rejoin () =
  let obs = Obs.create () in
  let ctx = setup ~chunk_size:2 ~obs () in
  seed_stores ctx;
  let site = ctx.n - 1 in
  Network.crash ctx.net site;
  Network.recover ctx.net site;
  Engine.run ctx.engine;
  let r = ctx.replicas.(site) in
  check_restored ctx site;
  Alcotest.(check bool) "serving again" true (Replica.is_serving r);
  Alcotest.(check int) "one transfer" 1 (Replica.provision_runs r);
  Alcotest.(check int) "ceil(8/2) chunks" 4 (Replica.provision_chunks r);
  Alcotest.(check int) "no failover" 0 (Replica.provision_donor_failovers r);
  let m = Obs.metrics obs in
  Alcotest.(check int) "provision.chunks counter" 4
    (Obs.Metrics.counter_of m "provision.chunks");
  Alcotest.(check int) "provision.runs counter" 1
    (Obs.Metrics.counter_of m "provision.runs")

(* Crash the recipient mid-transfer: the rejoin must resume after its
   newest durable chunk mark, not refetch from chunk 0. *)
let test_recipient_crash_resumes () =
  let ctx = setup () in
  seed_stores ctx;
  let site = ctx.n - 1 in
  Network.crash ctx.net site;
  Network.recover ctx.net site;
  (* 8 chunks of 1 key at ~2 virtual-time units a round trip: a crash a
     few units in lands mid-transfer with marks already durable *)
  Engine.schedule ctx.engine ~delay:6.0 (fun () ->
      Network.crash ctx.net site;
      Network.recover ctx.net site);
  Engine.run ctx.engine;
  let r = ctx.replicas.(site) in
  check_restored ctx site;
  Alcotest.(check bool) "serving again" true (Replica.is_serving r);
  Alcotest.(check bool) "resumed from a durable mark" true
    (Replica.provision_resumes r >= 1);
  Alcotest.(check bool) "no chunk refetched" true
    (Replica.provision_chunks r <= key_space)

(* Crash the donor mid-transfer: the watchdog fires, the recipient fails
   over to another donor and the transfer still completes. *)
let test_donor_crash_fails_over () =
  let ctx = setup ~timeout:5.0 () in
  seed_stores ctx;
  let site = ctx.n - 1 in
  (* the first donor pick is the lowest live site that is not the
     rejoiner *)
  let donor = 0 in
  Network.crash ctx.net site;
  Network.recover ctx.net site;
  Engine.schedule ctx.engine ~delay:3.0 (fun () -> Network.crash ctx.net donor);
  Engine.run ctx.engine;
  let r = ctx.replicas.(site) in
  check_restored ctx site;
  Alcotest.(check bool) "serving again" true (Replica.is_serving r);
  Alcotest.(check bool) "failed over" true
    (Replica.provision_donor_failovers r >= 1)

(* Fencing: with [fence] the rejoiner stays out of quorums until the WAL
   tail lands; without it, it serves (stale) immediately — the negative
   control's knob. *)
let test_fencing_gates_serving () =
  let fenced = setup () in
  seed_stores fenced;
  let site = fenced.n - 1 in
  Network.crash fenced.net site;
  Network.recover fenced.net site;
  Alcotest.(check bool) "fenced while transferring" false
    (Replica.is_serving fenced.replicas.(site));
  Alcotest.(check string) "status label" "recovering"
    (Replica.status_label fenced.replicas.(site));
  Engine.run fenced.engine;
  Alcotest.(check bool) "serving after the tail" true
    (Replica.is_serving fenced.replicas.(site));
  let unfenced = setup ~fence:false () in
  seed_stores unfenced;
  let site = unfenced.n - 1 in
  Network.crash unfenced.net site;
  Network.recover unfenced.net site;
  Alcotest.(check bool) "unfenced serves immediately" true
    (Replica.is_serving unfenced.replicas.(site))

(* Decommission is terminal: the replica refuses quorum roles for good
   and survives nothing-to-do crash/recover cycles still fenced. *)
let test_decommission_is_terminal () =
  let ctx = setup () in
  seed_stores ctx;
  let r = ctx.replicas.(2) in
  Replica.decommission r;
  Alcotest.(check bool) "decommissioned" true (Replica.is_decommissioned r);
  Alcotest.(check string) "status label" "decommissioned"
    (Replica.status_label r);
  Network.crash ctx.net 2;
  Network.recover ctx.net 2;
  Engine.run ctx.engine;
  Alcotest.(check bool) "still fenced after recover" true
    (Replica.is_decommissioned r)

(* Regression (the stuck-in-Recovering bug): when catch-up exhausts its
   retry budget the replica must land in the terminal failed-rejoin
   state — visible in the status label, the [failed_rejoins] counter and
   the obs counter — rather than sit in [Recovering] forever with no
   pending work. *)
let test_catchup_exhaustion_is_terminal_failed_rejoin () =
  let proto = fig1_proto () in
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed:42 () in
  let net = Network.create ~engine ~n:(n + 1) () in
  Network.set_crash_mode net Network.Amnesia;
  let obs = Obs.create () in
  let recovery =
    Replica.recovery ~catch_up:true ~proto
      ~keys:(fun () -> [ 0 ])
      ~catchup_timeout:5.0 ~catchup_max_attempts:2 ()
  in
  let replicas =
    Array.init n (fun site -> Replica.create ~site ~net ~recovery ~obs ())
  in
  let target = 0 in
  (* Nobody else is up: no read quorum ever assembles, so every catch-up
     gather times out until the budget runs dry. *)
  for site = 0 to n - 1 do
    if site <> target then Network.crash net site
  done;
  Network.crash net target;
  Network.recover net target;
  Engine.run engine;
  let r = replicas.(target) in
  Alcotest.(check bool) "terminal failed-rejoin" true
    (Replica.is_failed_rejoin r);
  Alcotest.(check string) "status label" "failed-rejoin"
    (Replica.status_label r);
  Alcotest.(check int) "failed_rejoins counted" 1 (Replica.failed_rejoins r);
  Alcotest.(check int) "obs counter" 1
    (Obs.Metrics.counter_of (Obs.metrics obs) "replica.rejoin.failed");
  Alcotest.(check bool) "not serving" false (Replica.is_serving r);
  (* the state is terminal for this incarnation but not forever: a new
     crash/recover cycle retries the rejoin *)
  Network.crash net target;
  Network.recover net target;
  Alcotest.(check string) "rejoin restarts on the next cycle" "recovering"
    (Replica.status_label r)

let suite =
  [
    Alcotest.test_case "cold rejoin provisions from a donor" `Quick
      test_basic_provisioning_rejoin;
    Alcotest.test_case "recipient crash resumes from the durable mark" `Quick
      test_recipient_crash_resumes;
    Alcotest.test_case "donor crash fails over" `Quick
      test_donor_crash_fails_over;
    Alcotest.test_case "fencing gates serving until the tail" `Quick
      test_fencing_gates_serving;
    Alcotest.test_case "decommission is terminal" `Quick
      test_decommission_is_terminal;
    Alcotest.test_case "catch-up exhaustion lands in failed-rejoin" `Quick
      test_catchup_exhaustion_is_terminal_failed_rejoin;
  ]
