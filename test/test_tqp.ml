module Tqp = Quorum.Tqp
module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Availability = Quorum.Availability
module Protocol = Quorum.Protocol

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_sizes () =
  let t = Tqp.create ~d:1 ~height:2 in
  Alcotest.(check int) "fanout 3" 3 (Tqp.fanout t);
  Alcotest.(check int) "n = 13" 13 (Tqp.n t);
  let t2 = Tqp.create ~d:2 ~height:1 in
  Alcotest.(check int) "fanout 5" 5 (Tqp.fanout t2);
  Alcotest.(check int) "n = 6" 6 (Tqp.n t2)

let test_cost_formulas () =
  (* §1: read within [1, (d+1)^h]; write ((d+1)^(h+1) - 1)/d. *)
  let t = Tqp.create ~d:1 ~height:3 in
  Alcotest.(check int) "min read 1" 1 (Tqp.min_read_cost t);
  Alcotest.(check int) "max read 2^3" 8 (Tqp.max_read_cost t);
  Alcotest.(check int) "write (2^4-1)/1" 15 (Tqp.write_cost t)

let test_read_prefers_root () =
  let t = Tqp.create ~d:1 ~height:2 in
  let rng = Rng.create 3 in
  let alive = Protocol.all_alive (Tqp.protocol t) in
  match Tqp.read_quorum t ~alive ~rng with
  | Some q -> Alcotest.(check (list int)) "just the root" [ 0 ] (Bitset.elements q)
  | None -> Alcotest.fail "read must succeed"

let test_read_fallback_on_root_crash () =
  let t = Tqp.create ~d:1 ~height:1 in
  let rng = Rng.create 5 in
  (* Root dead: need majority (2 of 3) of children. *)
  let alive = Bitset.of_list 4 [ 1; 2; 3 ] in
  (match Tqp.read_quorum t ~alive ~rng with
  | Some q -> Alcotest.(check int) "two children" 2 (Bitset.cardinal q)
  | None -> Alcotest.fail "fallback read must succeed");
  (* Root dead and two children dead: blocked. *)
  let alive2 = Bitset.of_list 4 [ 1 ] in
  Alcotest.(check bool) "minority blocked" true
    (Tqp.read_quorum t ~alive:alive2 ~rng = None)

let test_write_needs_root () =
  (* §1's motivating weakness: a root crash blocks every write. *)
  let t = Tqp.create ~d:1 ~height:1 in
  let rng = Rng.create 7 in
  let alive = Bitset.of_list 4 [ 1; 2; 3 ] in
  Alcotest.(check bool) "write blocked by root crash" true
    (Tqp.write_quorum t ~alive ~rng = None);
  let all = Protocol.all_alive (Tqp.protocol t) in
  match Tqp.write_quorum t ~alive:all ~rng with
  | Some q ->
    Alcotest.(check bool) "root in quorum" true (Bitset.mem q 0);
    Alcotest.(check int) "size = write cost" (Tqp.write_cost t) (Bitset.cardinal q)
  | None -> Alcotest.fail "write must succeed when all alive"

let test_bicoterie () =
  let t = Tqp.create ~d:1 ~height:1 in
  let reads =
    Quorum.Quorum_set.create ~universe:4 (List.of_seq (Tqp.enumerate_read_quorums t))
  in
  let writes =
    Quorum.Quorum_set.create ~universe:4 (List.of_seq (Tqp.enumerate_write_quorums t))
  in
  Alcotest.(check bool) "bicoterie" true
    (Quorum.Quorum_set.is_bicoterie ~read:reads ~write:writes);
  (* h=1, d=1: reads = root + C(3,2) child pairs = 4; writes = root+pair = 3. *)
  Alcotest.(check int) "4 read quorums" 4 (Quorum.Quorum_set.size reads);
  Alcotest.(check int) "3 write quorums" 3 (Quorum.Quorum_set.size writes)

let test_bicoterie_height2 () =
  let t = Tqp.create ~d:1 ~height:2 in
  let reads =
    Quorum.Quorum_set.create ~universe:13 (List.of_seq (Tqp.enumerate_read_quorums t))
  in
  let writes =
    Quorum.Quorum_set.create ~universe:13
      (List.of_seq (Tqp.enumerate_write_quorums t))
  in
  Alcotest.(check bool) "bicoterie at height 2" true
    (Quorum.Quorum_set.is_bicoterie ~read:reads ~write:writes)

let test_availability_vs_exact () =
  let t = Tqp.create ~d:1 ~height:1 in
  let proto = Tqp.protocol t in
  let rng = Rng.create 11 in
  List.iter
    (fun p ->
      let exact_rd =
        Availability.exact ~n:4 ~p (fun ~alive ->
            Protocol.read_quorum proto ~alive ~rng <> None)
      in
      let exact_wr =
        Availability.exact ~n:4 ~p (fun ~alive ->
            Protocol.write_quorum proto ~alive ~rng <> None)
      in
      Alcotest.(check bool) "read recurrence" true
        (feq exact_rd (Tqp.read_availability t ~p));
      Alcotest.(check bool) "write recurrence" true
        (feq exact_wr (Tqp.write_availability t ~p)))
    [ 0.5; 0.7; 0.9 ]

let test_write_availability_below_p () =
  (* §1: write availability is always at most p. *)
  let t = Tqp.create ~d:1 ~height:3 in
  List.iter
    (fun p ->
      Alcotest.(check bool) "<= p" true (Tqp.write_availability t ~p <= p);
      Alcotest.(check bool) "read >= p for p > 1/2" true
        (p <= 0.5 || Tqp.read_availability t ~p >= p))
    [ 0.4; 0.6; 0.8; 0.95 ]

let test_write_load_is_one () =
  (* LP on the enumerated write quorums: the root is in all of them. *)
  let t = Tqp.create ~d:1 ~height:1 in
  let writes =
    Quorum.Quorum_set.create ~universe:4 (List.of_seq (Tqp.enumerate_write_quorums t))
  in
  Alcotest.(check bool) "LP write load 1" true
    (abs_float (Analysis.Load_lp.optimal_load writes -. 1.0) < 1e-6);
  Alcotest.(check bool) "formula agrees" true (feq (Tqp.write_load t) 1.0)

let test_arbitrary_beats_tqp_write_load () =
  (* The ICDCS paper's pitch: same n, the arbitrary protocol's write load
     is far below the VLDB-90 protocol's load of 1. *)
  let tqp = Tqp.create ~d:1 ~height:2 in
  let tree = Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:(Tqp.n tqp) in
  Alcotest.(check bool) "lower write load" true
    (Arbitrary.Analysis.write_load tree < Tqp.write_load tqp)

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "cost formulas (§1)" `Quick test_cost_formulas;
    Alcotest.test_case "read prefers the root" `Quick test_read_prefers_root;
    Alcotest.test_case "read fallback on root crash" `Quick
      test_read_fallback_on_root_crash;
    Alcotest.test_case "write needs the root (§1)" `Quick test_write_needs_root;
    Alcotest.test_case "bicoterie h=1" `Quick test_bicoterie;
    Alcotest.test_case "bicoterie h=2" `Quick test_bicoterie_height2;
    Alcotest.test_case "availability recurrences vs exact" `Quick
      test_availability_vs_exact;
    Alcotest.test_case "write availability <= p" `Quick
      test_write_availability_below_p;
    Alcotest.test_case "write load 1 via LP" `Quick test_write_load_is_one;
    Alcotest.test_case "arbitrary beats VLDB-90 on write load" `Quick
      test_arbitrary_beats_tqp_write_load;
  ]
