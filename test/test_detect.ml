(* Unit tests for the failure-detection library: φ-accrual estimation,
   adaptive RTO, jittered backoff, heartbeat monitor, detector views. *)

module Accrual = Detect.Accrual
module Rto = Detect.Rto
module Backoff = Detect.Backoff
module Breaker = Detect.Breaker
module Budget = Detect.Budget
module Heartbeat = Detect.Heartbeat
module View = Detect.View
module Engine = Dsim.Engine
module Network = Dsim.Network
module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng

(* -- Accrual ------------------------------------------------------------ *)

(* Feed [count] heartbeats at a regular [period], starting at [start]. *)
let feed acc ~site ~start ~period ~count =
  for i = 0 to count - 1 do
    Accrual.heartbeat acc ~site ~now:(start +. (float_of_int i *. period))
  done

let test_bootstrap_grace () =
  let acc = Accrual.create ~n:2 () in
  Alcotest.(check bool)
    "never heard: not suspected" false
    (Accrual.suspected acc ~site:0 ~now:1000.0);
  Accrual.heartbeat acc ~site:0 ~now:0.0;
  Accrual.heartbeat acc ~site:0 ~now:5.0;
  (* Only 1 interval < min_samples: still in grace however long the
     silence. *)
  Alcotest.(check (float 0.0)) "phi 0 in grace" 0.0
    (Accrual.phi acc ~site:0 ~now:10_000.0)

let test_phi_grows_with_silence () =
  let acc = Accrual.create ~n:1 () in
  feed acc ~site:0 ~start:0.0 ~period:5.0 ~count:10;
  let last = 45.0 in
  let phi_soon = Accrual.phi acc ~site:0 ~now:(last +. 5.0) in
  let phi_late = Accrual.phi acc ~site:0 ~now:(last +. 20.0) in
  let phi_very_late = Accrual.phi acc ~site:0 ~now:(last +. 60.0) in
  Alcotest.(check bool) "phi monotone in silence" true
    (phi_soon < phi_late && phi_late < phi_very_late);
  Alcotest.(check bool)
    "on-schedule heartbeat is unsuspicious" true (phi_soon < 1.0);
  Alcotest.(check bool) "long silence suspected" true
    (Accrual.suspected acc ~site:0 ~now:(last +. 60.0))

let test_rehabilitation () =
  let acc = Accrual.create ~n:1 () in
  feed acc ~site:0 ~start:0.0 ~period:5.0 ~count:10;
  Alcotest.(check bool) "suspected after outage" true
    (Accrual.suspected acc ~site:0 ~now:200.0);
  (* A single heartbeat resets φ. *)
  Accrual.heartbeat acc ~site:0 ~now:200.0;
  Alcotest.(check bool) "rehabilitated instantly" false
    (Accrual.suspected acc ~site:0 ~now:200.1)

let test_outage_clamp () =
  let acc = Accrual.create ~n:1 () in
  feed acc ~site:0 ~start:0.0 ~period:5.0 ~count:20;
  (* A 500-unit outage, then heartbeats resume.  The outage gap must be
     clamped, not recorded raw, so the mean stays near the true period and
     the detector still reacts to the next outage promptly. *)
  Accrual.heartbeat acc ~site:0 ~now:595.0;
  feed acc ~site:0 ~start:600.0 ~period:5.0 ~count:10;
  let mean = Accrual.mean_interval acc ~site:0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f stays near period" mean)
    true (mean < 10.0);
  Alcotest.(check bool) "re-suspects after second outage" true
    (Accrual.suspected acc ~site:0 ~now:800.0)

let test_out_of_order_evidence () =
  let acc = Accrual.create ~n:1 () in
  feed acc ~site:0 ~start:0.0 ~period:5.0 ~count:5;
  let before = Accrual.samples acc ~site:0 in
  (* Evidence older than the newest heartbeat adds no interval and does
     not move the freshness clock backwards. *)
  Accrual.heartbeat acc ~site:0 ~now:3.0;
  Alcotest.(check int) "stale heartbeat ignored" before
    (Accrual.samples acc ~site:0);
  Alcotest.(check bool) "freshness kept" true
    (Accrual.phi acc ~site:0 ~now:21.0 < 1.0)

let test_accrual_bad_site () =
  let acc = Accrual.create ~n:3 () in
  Alcotest.check_raises "site out of range"
    (Invalid_argument "Accrual: bad site id") (fun () ->
      Accrual.heartbeat acc ~site:3 ~now:0.0)

(* -- Rto ---------------------------------------------------------------- *)

let test_rto_initial () =
  let rto = Rto.create () in
  Alcotest.(check (float 0.0)) "no samples: initial"
    Rto.default_config.Rto.initial (Rto.timeout rto);
  for _ = 1 to Rto.default_config.Rto.min_samples - 1 do
    Rto.observe rto 1.0
  done;
  Alcotest.(check (float 0.0)) "below min_samples: initial"
    Rto.default_config.Rto.initial (Rto.timeout rto)

let test_rto_adapts () =
  let rto = Rto.create () in
  for _ = 1 to 100 do
    Rto.observe rto 2.0
  done;
  (* quantile of a constant stream = 2.0; timeout = 3 × 2 = 6. *)
  Alcotest.(check (float 0.5)) "3x the observed RTT" 6.0 (Rto.timeout rto)

let test_rto_clamps () =
  let tight = Rto.create () in
  for _ = 1 to 100 do
    Rto.observe tight 0.01
  done;
  Alcotest.(check (float 0.0)) "clamped below"
    Rto.default_config.Rto.min_timeout (Rto.timeout tight);
  let slow = Rto.create () in
  for _ = 1 to 100 do
    Rto.observe slow 1000.0
  done;
  Alcotest.(check (float 0.0)) "clamped above"
    Rto.default_config.Rto.max_timeout (Rto.timeout slow)

let test_rto_ignores_garbage () =
  let rto = Rto.create () in
  Rto.observe rto (-5.0);
  Rto.observe rto 0.0;
  Alcotest.(check int) "non-positive samples dropped" 0 (Rto.samples rto)

(* -- Backoff ------------------------------------------------------------ *)

let test_backoff_growth () =
  let policy = { Backoff.default with Backoff.jitter = 0.0 } in
  let rng = Rng.create 7 in
  let d k = Backoff.delay policy ~rng ~attempt:k in
  Alcotest.(check (float 1e-9)) "attempt 0 = base" policy.Backoff.base (d 0);
  Alcotest.(check (float 1e-9)) "attempt 1 doubles"
    (policy.Backoff.base *. 2.0) (d 1);
  Alcotest.(check (float 1e-9)) "attempt 2 quadruples"
    (policy.Backoff.base *. 4.0) (d 2);
  Alcotest.(check (float 1e-9)) "capped" policy.Backoff.max_delay (d 50)

let test_backoff_jitter_bounds () =
  let policy = Backoff.default in
  let rng = Rng.create 11 in
  for attempt = 0 to 8 do
    let raw =
      Float.min policy.Backoff.max_delay
        (policy.Backoff.base
        *. Float.pow policy.Backoff.factor (float_of_int attempt))
    in
    for _ = 1 to 50 do
      let d = Backoff.delay policy ~rng ~attempt in
      let lo = raw *. (1.0 -. policy.Backoff.jitter)
      and hi = raw *. (1.0 +. policy.Backoff.jitter) in
      if d < lo -. 1e-9 || d > hi +. 1e-9 then
        Alcotest.failf "attempt %d: delay %.3f outside [%.3f, %.3f]" attempt d
          lo hi
    done
  done

let test_backoff_huge_attempt_capped () =
  (* The geometric growth overflows a float well before attempt 2000; the
     cap must still hold and the jittered delay must stay finite and
     within the jitter band of the cap. *)
  let policy = Backoff.default in
  let rng = Rng.create 5 in
  List.iter
    (fun attempt ->
      let d = Backoff.delay policy ~rng ~attempt in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d finite" attempt)
        true (Float.is_finite d);
      let hi = policy.Backoff.max_delay *. (1.0 +. policy.Backoff.jitter) in
      let lo = policy.Backoff.max_delay *. (1.0 -. policy.Backoff.jitter) in
      if d < lo -. 1e-9 || d > hi +. 1e-9 then
        Alcotest.failf "attempt %d: delay %.3f outside capped band [%.3f, %.3f]"
          attempt d lo hi)
    [ 64; 1000; 100_000; max_int ]

let test_backoff_deterministic () =
  let gen seed =
    let rng = Rng.create seed in
    List.init 10 (fun k -> Backoff.delay Backoff.default ~rng ~attempt:k)
  in
  Alcotest.(check (list (float 1e-12))) "same seed, same delays"
    (gen 3) (gen 3);
  Alcotest.(check bool) "different seeds decorrelate" true (gen 3 <> gen 4)

(* -- Circuit breaker ----------------------------------------------------- *)

let breaker ?config ?(n = 3) ?(at = ref 0.0) () =
  let t = Breaker.create ?config ~n ~now:(fun () -> !at) () in
  (t, at)

let trip b site threshold =
  let tripped = ref false in
  for _ = 1 to threshold do
    if Breaker.record_failure b site then tripped := true
  done;
  !tripped

let test_breaker_trips_on_threshold () =
  let config = { Breaker.default_config with Breaker.threshold = 3 } in
  let b, _ = breaker ~config () in
  Alcotest.(check bool) "no trip below threshold" false
    (Breaker.record_failure b 0);
  Alcotest.(check bool) "still below" false (Breaker.record_failure b 0);
  Alcotest.(check bool) "closed" true (Breaker.state b 0 = Breaker.Closed);
  Alcotest.(check bool) "third consecutive failure trips" true
    (Breaker.record_failure b 0);
  Alcotest.(check bool) "open" true (Breaker.state b 0 = Breaker.Open);
  Alcotest.(check bool) "not allowed" false (Breaker.allowed b 0);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Alcotest.(check bool) "other sites unaffected" true (Breaker.allowed b 1)

let test_breaker_ok_resets_streak () =
  let config = { Breaker.default_config with Breaker.threshold = 3 } in
  let b, _ = breaker ~config () in
  ignore (Breaker.record_failure b 0);
  ignore (Breaker.record_failure b 0);
  Breaker.record_ok b 0;
  (* The streak restarted: two more failures must not trip. *)
  ignore (Breaker.record_failure b 0);
  Alcotest.(check bool) "streak was reset" false (Breaker.record_failure b 0);
  Alcotest.(check bool) "closed" true (Breaker.state b 0 = Breaker.Closed)

let test_breaker_half_open_and_close () =
  let config =
    { Breaker.default_config with Breaker.threshold = 2; cooldown = 100.0 }
  in
  let b, at = breaker ~config () in
  Alcotest.(check bool) "trips" true (trip b 0 2);
  at := 99.0;
  Alcotest.(check bool) "still open inside cooldown" true
    (Breaker.state b 0 = Breaker.Open);
  at := 100.0;
  Alcotest.(check bool) "half-open after cooldown" true
    (Breaker.state b 0 = Breaker.Half_open);
  Alcotest.(check bool) "half-open admits probe traffic" true
    (Breaker.allowed b 0);
  Alcotest.(check int) "probe counted" 1 (Breaker.probes b);
  Breaker.record_ok b 0;
  Alcotest.(check bool) "probe success closes" true
    (Breaker.state b 0 = Breaker.Closed)

let test_breaker_failed_probe_grows_cooldown () =
  let config =
    {
      Breaker.threshold = 2;
      cooldown = 100.0;
      cooldown_factor = 2.0;
      max_cooldown = 300.0;
    }
  in
  let b, at = breaker ~config () in
  ignore (trip b 0 2);
  at := 100.0;
  Alcotest.(check bool) "half-open" true (Breaker.state b 0 = Breaker.Half_open);
  (* A single failure re-opens a half-open breaker (no threshold). *)
  Alcotest.(check bool) "failed probe re-trips" true
    (Breaker.record_failure b 0);
  at := 100.0 +. 199.0;
  Alcotest.(check bool) "cooldown doubled: still open" true
    (Breaker.state b 0 = Breaker.Open);
  at := 100.0 +. 200.0;
  Alcotest.(check bool) "half-open again" true
    (Breaker.state b 0 = Breaker.Half_open);
  ignore (Breaker.record_failure b 0);
  (* 400 would exceed the cap: the third cooldown is clamped to 300. *)
  at := 300.0 +. 299.0;
  Alcotest.(check bool) "capped cooldown still open" true
    (Breaker.state b 0 = Breaker.Open);
  at := 300.0 +. 300.0;
  Alcotest.(check bool) "capped cooldown elapses" true
    (Breaker.state b 0 = Breaker.Half_open)

let test_breaker_late_ok_ignored_while_open () =
  let config = { Breaker.default_config with Breaker.threshold = 2 } in
  let b, _ = breaker ~config () in
  ignore (trip b 0 2);
  (* A reply from before the trip arrives late: must not un-trip. *)
  Breaker.record_ok b 0;
  Alcotest.(check bool) "still open" true (Breaker.state b 0 = Breaker.Open)

let test_breaker_filter () =
  let config = { Breaker.default_config with Breaker.threshold = 2 } in
  let b, at = breaker ~config ~n:4 () in
  ignore (trip b 1 2);
  ignore (trip b 3 2);
  Alcotest.(check (list int)) "open sites" [ 1; 3 ] (Breaker.open_sites b);
  let view = Bitset.create 4 in
  for i = 0 to 3 do
    Bitset.add view i
  done;
  let filtered = Breaker.filter b view in
  Alcotest.(check (list int)) "open sites removed" [ 0; 2 ]
    (Bitset.elements filtered);
  (* After cooldown the half-open sites re-enter the view as probes. *)
  at := 1e9;
  let view2 = Bitset.create 4 in
  for i = 0 to 3 do
    Bitset.add view2 i
  done;
  Alcotest.(check int) "half-open sites restored" 4
    (Bitset.cardinal (Breaker.filter b view2))

(* Regression: read-only inspection must never commit state transitions.
   [open_sites] and [state] used to route through the mutating accessor,
   so merely LOOKING at a cooled-down breaker flipped it Half_open and
   counted a probe — monitoring changed what it measured.  Now inspection
   is pure and only the traffic path ([allowed] / [record_*]) commits the
   Open -> Half_open transition. *)
let test_breaker_inspection_is_pure () =
  let config =
    { Breaker.default_config with Breaker.threshold = 2; cooldown = 100.0 }
  in
  let b, at = breaker ~config () in
  ignore (trip b 0 2);
  at := 100.0;
  (* Cooldown elapsed: N consecutive inspections all see the effective
     Half_open state and leave the probe counter untouched. *)
  for _ = 1 to 10 do
    Alcotest.(check (list int)) "open_sites sees through the cooldown" []
      (Breaker.open_sites b)
  done;
  for _ = 1 to 10 do
    Alcotest.(check bool) "state reports half-open" true
      (Breaker.state b 0 = Breaker.Half_open)
  done;
  Alcotest.(check int) "inspection counted no probes" 0 (Breaker.probes b);
  (* The first traffic-path call commits the transition: exactly one
     probe, not eleven. *)
  Alcotest.(check bool) "allowed admits the probe" true (Breaker.allowed b 0);
  Alcotest.(check int) "exactly one probe" 1 (Breaker.probes b);
  Breaker.record_ok b 0;
  Alcotest.(check bool) "probe success closes" true
    (Breaker.state b 0 = Breaker.Closed)

let test_breaker_rejects_bad_config () =
  Alcotest.check_raises "zero threshold"
    (Invalid_argument "Breaker.create: threshold < 1")
    (fun () ->
      ignore
        (Breaker.create
           ~config:{ Breaker.default_config with Breaker.threshold = 0 }
           ~n:1
           ~now:(fun () -> 0.0)
           ()))

(* -- Retry budget -------------------------------------------------------- *)

let test_budget_starts_full () =
  let b = Budget.create ~config:{ Budget.ratio = 0.2; burst = 3.0 } () in
  Alcotest.(check (float 1e-9)) "full bucket" 3.0 (Budget.tokens b);
  Alcotest.(check bool) "retry 1" true (Budget.try_retry b);
  Alcotest.(check bool) "retry 2" true (Budget.try_retry b);
  Alcotest.(check bool) "retry 3" true (Budget.try_retry b);
  Alcotest.(check bool) "bucket empty" false (Budget.try_retry b);
  Alcotest.(check int) "granted" 3 (Budget.granted b);
  Alcotest.(check int) "suppressed" 1 (Budget.suppressed b)

let test_budget_deposits_per_attempt () =
  let b = Budget.create ~config:{ Budget.ratio = 0.5; burst = 10.0 } () in
  for _ = 1 to 10 do
    ignore (Budget.try_retry b)
  done;
  Alcotest.(check (float 1e-9)) "drained" 0.0 (Budget.tokens b);
  Budget.on_attempt b;
  Alcotest.(check (float 1e-9)) "one deposit" 0.5 (Budget.tokens b);
  Alcotest.(check bool) "half a token is not enough" false
    (Budget.try_retry b);
  Budget.on_attempt b;
  Alcotest.(check bool) "two deposits buy one retry" true (Budget.try_retry b);
  Alcotest.(check int) "attempts counted" 2 (Budget.attempts b)

let test_budget_burst_cap () =
  let b = Budget.create ~config:{ Budget.ratio = 1.0; burst = 2.0 } () in
  for _ = 1 to 100 do
    Budget.on_attempt b
  done;
  Alcotest.(check (float 1e-9)) "capped at burst" 2.0 (Budget.tokens b)

let test_budget_rejects_bad_config () =
  Alcotest.check_raises "negative ratio"
    (Invalid_argument "Budget.create: negative ratio") (fun () ->
      ignore (Budget.create ~config:{ Budget.ratio = -0.1; burst = 5.0 } ()));
  Alcotest.check_raises "burst below one"
    (Invalid_argument "Budget.create: burst < 1") (fun () ->
      ignore (Budget.create ~config:{ Budget.ratio = 0.2; burst = 0.5 } ()))

(* -- Heartbeat monitor -------------------------------------------------- *)

(* A monitor over [n] fake replicas: pings are counted per destination and
   answered (observe) after [rtt] unless the site is in [down]. *)
let monitor_setup ?(n = 3) ?(rtt = 1.0) () =
  let engine = Engine.create ~seed:1 () in
  let down = Array.make n false in
  let pings = Array.make n 0 in
  let hb = ref None in
  let send_ping dst =
    pings.(dst) <- pings.(dst) + 1;
    if not down.(dst) then
      Engine.schedule engine ~delay:rtt (fun () ->
          Heartbeat.observe (Option.get !hb) ~site:dst)
  in
  let config =
    { Heartbeat.period = 5.0; accrual = Accrual.default_config }
  in
  hb := Some (Heartbeat.create ~engine ~n ~config ~send_ping ());
  (engine, Option.get !hb, down, pings)

let test_heartbeat_pings_on_period () =
  let engine, hb, _, pings = monitor_setup () in
  Engine.run ~until:51.0 engine;
  Heartbeat.stop hb;
  (* Ticks at t = 0, 5, …, 50: 11 pings per site. *)
  Array.iteri
    (fun site c -> Alcotest.(check int) (Printf.sprintf "site %d" site) 11 c)
    pings;
  Alcotest.(check int) "pings_sent totals" 33 (Heartbeat.pings_sent hb)

let test_heartbeat_detects_and_rehabilitates () =
  let engine, hb, down, _ = monitor_setup () in
  Engine.run ~until:100.0 engine;
  Alcotest.(check bool) "healthy site trusted" false
    (Heartbeat.suspected hb ~site:1);
  down.(1) <- true;
  Engine.run ~until:200.0 engine;
  Alcotest.(check bool) "silent site suspected" true
    (Heartbeat.suspected hb ~site:1);
  Alcotest.(check bool) "others unaffected" false
    (Heartbeat.suspected hb ~site:0 || Heartbeat.suspected hb ~site:2);
  down.(1) <- false;
  Engine.run ~until:220.0 engine;
  Heartbeat.stop hb;
  Alcotest.(check bool) "rehabilitated after recovery" false
    (Heartbeat.suspected hb ~site:1)

let test_heartbeat_explicit_suspicion_sticky () =
  let engine, hb, down, _ = monitor_setup () in
  down.(2) <- true;
  (* Protocol-level negative evidence arrives before accrual would fire. *)
  Heartbeat.suspect hb ~site:2;
  Alcotest.(check bool) "suspect is immediate" true
    (Heartbeat.suspected hb ~site:2);
  let view = Heartbeat.view hb in
  Alcotest.(check bool) "view excludes it" false
    (Bitset.mem (view.View.alive ()) 2);
  down.(2) <- false;
  Engine.run ~until:20.0 engine;
  Heartbeat.stop hb;
  (* The next pong rehabilitates: sticky only while silent. *)
  Alcotest.(check bool) "cleared by proof of life" false
    (Heartbeat.suspected hb ~site:2);
  Alcotest.(check bool) "view includes it again" true
    (Bitset.mem (view.View.alive ()) 2)

let test_heartbeat_stop () =
  let engine, hb, _, pings = monitor_setup ~n:1 () in
  Engine.run ~until:20.0 engine;
  Heartbeat.stop hb;
  let before = pings.(0) in
  Engine.run ~until:100.0 engine;
  Alcotest.(check int) "no pings after stop" before pings.(0);
  Alcotest.(check int) "engine drained" 0 (Engine.pending engine)

(* -- Views -------------------------------------------------------------- *)

let test_always_up_view () =
  let v = View.always_up ~n:5 in
  let alive = v.View.alive () in
  Alcotest.(check int) "all alive" 5 (Bitset.cardinal alive);
  v.View.suspect 3;
  Alcotest.(check bool) "suspicion ignored" true
    (Bitset.mem (v.View.alive ()) 3)

let test_oracle_view () =
  let engine = Engine.create ~seed:1 () in
  (* 4 replicas + 1 client site; the view covers only the replicas. *)
  let net = Network.create ~engine ~n:5 () in
  Network.set_handler net ~site:4 (fun ~src:_ () -> ());
  let v = View.oracle ~net ~self:4 ~n:4 in
  Alcotest.(check int) "replica universe only" 4
    (Bitset.capacity (v.View.alive ()));
  Alcotest.(check int) "all up initially" 4
    (Bitset.cardinal (v.View.alive ()));
  Network.crash net 2;
  Alcotest.(check bool) "crash visible instantly" false
    (Bitset.mem (v.View.alive ()) 2);
  Network.recover net 2;
  Network.partition net [ [ 0; 1 ] ];
  let alive = v.View.alive () in
  Alcotest.(check bool) "partitioned minority unreachable" false
    (Bitset.mem alive 0 || Bitset.mem alive 1);
  Alcotest.(check bool) "own side reachable" true
    (Bitset.mem alive 2 && Bitset.mem alive 3);
  Network.heal net;
  Alcotest.(check int) "heal restores" 4 (Bitset.cardinal (v.View.alive ()))

let suite =
  [
    Alcotest.test_case "accrual: bootstrap grace" `Quick test_bootstrap_grace;
    Alcotest.test_case "accrual: phi grows with silence" `Quick
      test_phi_grows_with_silence;
    Alcotest.test_case "accrual: one heartbeat rehabilitates" `Quick
      test_rehabilitation;
    Alcotest.test_case "accrual: outage gap clamped" `Quick test_outage_clamp;
    Alcotest.test_case "accrual: stale evidence ignored" `Quick
      test_out_of_order_evidence;
    Alcotest.test_case "accrual: bad site rejected" `Quick
      test_accrual_bad_site;
    Alcotest.test_case "rto: initial until enough samples" `Quick
      test_rto_initial;
    Alcotest.test_case "rto: tracks observed RTT" `Quick test_rto_adapts;
    Alcotest.test_case "rto: clamped to band" `Quick test_rto_clamps;
    Alcotest.test_case "rto: non-positive samples dropped" `Quick
      test_rto_ignores_garbage;
    Alcotest.test_case "backoff: geometric growth, capped" `Quick
      test_backoff_growth;
    Alcotest.test_case "backoff: jitter stays in bounds" `Quick
      test_backoff_jitter_bounds;
    Alcotest.test_case "backoff: deterministic per seed" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff: absurd attempt counts stay capped" `Quick
      test_backoff_huge_attempt_capped;
    Alcotest.test_case "breaker: trips on threshold" `Quick
      test_breaker_trips_on_threshold;
    Alcotest.test_case "breaker: success resets streak" `Quick
      test_breaker_ok_resets_streak;
    Alcotest.test_case "breaker: half-opens and closes" `Quick
      test_breaker_half_open_and_close;
    Alcotest.test_case "breaker: failed probe grows cooldown" `Quick
      test_breaker_failed_probe_grows_cooldown;
    Alcotest.test_case "breaker: late ok ignored while open" `Quick
      test_breaker_late_ok_ignored_while_open;
    Alcotest.test_case "breaker: filter removes open sites" `Quick
      test_breaker_filter;
    Alcotest.test_case "breaker: inspection is pure" `Quick
      test_breaker_inspection_is_pure;
    Alcotest.test_case "breaker: rejects bad config" `Quick
      test_breaker_rejects_bad_config;
    Alcotest.test_case "budget: starts full, drains, suppresses" `Quick
      test_budget_starts_full;
    Alcotest.test_case "budget: attempts deposit fractions" `Quick
      test_budget_deposits_per_attempt;
    Alcotest.test_case "budget: deposits capped at burst" `Quick
      test_budget_burst_cap;
    Alcotest.test_case "budget: rejects bad config" `Quick
      test_budget_rejects_bad_config;
    Alcotest.test_case "heartbeat: pings on period" `Quick
      test_heartbeat_pings_on_period;
    Alcotest.test_case "heartbeat: detects silence, rehabilitates" `Quick
      test_heartbeat_detects_and_rehabilitates;
    Alcotest.test_case "heartbeat: explicit suspicion sticky" `Quick
      test_heartbeat_explicit_suspicion_sticky;
    Alcotest.test_case "heartbeat: stop drains" `Quick test_heartbeat_stop;
    Alcotest.test_case "view: always_up" `Quick test_always_up_view;
    Alcotest.test_case "view: oracle tracks ground truth" `Quick
      test_oracle_view;
  ]
