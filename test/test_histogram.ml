module Histogram = Dsutil.Histogram

let test_bucketing () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 3.0; 5.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  let buckets = Histogram.bucket_counts h in
  (* 0.5 -> [0,2); 1.5 -> [0,2) (log2 1.5 = 0); 3.0 -> [2,4); 5.0 -> [4,8);
     100.0 -> [64,128) *)
  Alcotest.(check int) "bucket count" 4 (List.length buckets);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "sums to count" 5 total

let test_ascending_ranges () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 10.0; 1000.0 ];
  let rec check_sorted = function
    | (_, hi1, _) :: ((lo2, _, _) :: _ as rest) ->
      Alcotest.(check bool) "ascending" true (hi1 <= lo2 +. 1e-9);
      check_sorted rest
    | _ -> ()
  in
  check_sorted (Histogram.bucket_counts h)

let test_invalid_args () =
  Alcotest.check_raises "bad base"
    (Invalid_argument "Histogram.create: base must exceed 1") (fun () ->
      ignore (Histogram.create ~base:1.0 ()));
  Alcotest.check_raises "bad buckets"
    (Invalid_argument "Histogram.create: need at least one bucket") (fun () ->
      ignore (Histogram.create ~buckets:0 ()))

let test_render () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 1.0; 4.0 ];
  let s = Histogram.render h ~width:10 in
  Alcotest.(check bool) "mentions counts" true
    (String.length s > 0 && String.contains s '#')

let test_overflow_bucket () =
  let h = Histogram.create ~base:2.0 ~buckets:4 () in
  Histogram.add h 1e12;
  (* Clamped into the last bucket rather than raising. *)
  Alcotest.(check int) "clamped" 1 (Histogram.count h)

(* Regression: log-float rounding used to misplace values sitting exactly
   on a bucket boundary (log10 1000 computes as 2.999…), so x = base^k
   could land in bucket k-1.  Boundary assignment must be deterministic:
   base^k belongs to [base^k, base^(k+1)). *)
let test_boundary_determinism () =
  let h = Histogram.create ~base:10.0 () in
  List.iter (Histogram.add h) [ 1.0; 10.0; 100.0; 1000.0; 10000.0 ];
  let buckets = Histogram.bucket_counts h in
  Alcotest.(check int) "one bucket per power" 5 (List.length buckets);
  List.iter
    (fun (lo, hi, c) ->
      Alcotest.(check int) "exactly one value" 1 c;
      if lo > 0.0 then begin
        (* Each power of ten is the *lower* edge of its own bucket. *)
        Alcotest.(check (float 1e-6)) "lands on its lower edge" lo
          (Float.of_int (int_of_float lo));
        Alcotest.(check bool) "hi = base * lo" true
          (Float.abs (hi -. (10.0 *. lo)) < 1e-6)
      end)
    buckets;
  (* Same property for base 2 at a power large enough to tickle rounding. *)
  let h2 = Histogram.create ~base:2.0 () in
  Histogram.add h2 1024.0;
  (match Histogram.bucket_counts h2 with
  | [ (lo, hi, 1) ] ->
    Alcotest.(check (float 1e-9)) "2^10 lower edge" 1024.0 lo;
    Alcotest.(check (float 1e-9)) "2^11 upper edge" 2048.0 hi
  | _ -> Alcotest.fail "expected exactly one bucket")

(* Regression: bucket 0 is the catch-all for everything below 1.0 —
   including zero and negatives — and must advertise -inf as its lower
   bound instead of pretending to start at 1. *)
let test_catch_all_bucket () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ -5.0; 0.0; 0.25; 1.5 ];
  (match Histogram.bucket_counts h with
  | [ (lo0, hi0, c0) ] ->
    Alcotest.(check bool) "lo is -inf" true (lo0 = neg_infinity);
    Alcotest.(check (float 1e-9)) "hi is base" 2.0 hi0;
    Alcotest.(check int) "all four collapse into bucket 0" 4 c0
  | bs -> Alcotest.failf "expected 1 bucket, got %d" (List.length bs));
  let rendered = Histogram.render h ~width:10 in
  Alcotest.(check bool) "render labels -inf" true
    (String.length rendered > 0
    &&
    let rec has i =
      i + 4 <= String.length rendered
      && (String.sub rendered i 4 = "-inf" || has (i + 1))
    in
    has 0)

let suite =
  [
    Alcotest.test_case "bucketing" `Quick test_bucketing;
    Alcotest.test_case "ascending ranges" `Quick test_ascending_ranges;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "overflow clamps" `Quick test_overflow_bucket;
    Alcotest.test_case "boundary determinism" `Quick test_boundary_determinism;
    Alcotest.test_case "catch-all bucket 0" `Quick test_catch_all_bucket;
  ]
