module Histogram = Dsutil.Histogram

let test_bucketing () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 3.0; 5.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  let buckets = Histogram.bucket_counts h in
  (* 0.5 -> [0,2); 1.5 -> [0,2) (log2 1.5 = 0); 3.0 -> [2,4); 5.0 -> [4,8);
     100.0 -> [64,128) *)
  Alcotest.(check int) "bucket count" 4 (List.length buckets);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "sums to count" 5 total

let test_ascending_ranges () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 10.0; 1000.0 ];
  let rec check_sorted = function
    | (_, hi1, _) :: ((lo2, _, _) :: _ as rest) ->
      Alcotest.(check bool) "ascending" true (hi1 <= lo2 +. 1e-9);
      check_sorted rest
    | _ -> ()
  in
  check_sorted (Histogram.bucket_counts h)

let test_invalid_args () =
  Alcotest.check_raises "bad base"
    (Invalid_argument "Histogram.create: base must exceed 1") (fun () ->
      ignore (Histogram.create ~base:1.0 ()));
  Alcotest.check_raises "bad buckets"
    (Invalid_argument "Histogram.create: need at least one bucket") (fun () ->
      ignore (Histogram.create ~buckets:0 ()))

let test_render () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 1.0; 4.0 ];
  let s = Histogram.render h ~width:10 in
  Alcotest.(check bool) "mentions counts" true
    (String.length s > 0 && String.contains s '#')

let test_overflow_bucket () =
  let h = Histogram.create ~base:2.0 ~buckets:4 () in
  Histogram.add h 1e12;
  (* Clamped into the last bucket rather than raising. *)
  Alcotest.(check int) "clamped" 1 (Histogram.count h)

let suite =
  [
    Alcotest.test_case "bucketing" `Quick test_bucketing;
    Alcotest.test_case "ascending ranges" `Quick test_ascending_ranges;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "overflow clamps" `Quick test_overflow_bucket;
  ]
