module Heap = Dsutil.Heap

let test_empty () =
  let h = Heap.create ~compare:Int.compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_ordering () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (fun k -> Heap.push h k (string_of_int k)) [ 5; 3; 8; 1; 9; 2 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (k, _) ->
      order := k :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ] (List.rev !order)

let test_fifo_ties () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (fun v -> Heap.push h 1 v) [ "a"; "b"; "c" ];
  let vs =
    List.init 3 (fun _ ->
        match Heap.pop h with Some (_, v) -> v | None -> assert false)
  in
  Alcotest.(check (list string)) "FIFO among ties" [ "a"; "b"; "c" ] vs

let test_interleaved () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 4 "d";
  Heap.push h 2 "b";
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some (2, "b"));
  ignore (Heap.pop h);
  Heap.push h 1 "a";
  Heap.push h 3 "c";
  Alcotest.(check bool) "pop a" true (Heap.pop h = Some (1, "a"));
  Alcotest.(check bool) "pop c" true (Heap.pop h = Some (3, "c"));
  Alcotest.(check bool) "pop d" true (Heap.pop h = Some (4, "d"))

let test_to_sorted_list () =
  let h = Heap.create ~compare:Int.compare in
  Alcotest.(check bool) "empty sorted list" true (Heap.to_sorted_list h = []);
  List.iter (fun k -> Heap.push h k k) [ 3; 1; 2 ];
  Alcotest.(check bool) "sorted list" true
    (Heap.to_sorted_list h = [ (1, 1); (2, 2); (3, 3) ]);
  Alcotest.(check int) "non-destructive" 3 (Heap.length h)

let test_clear () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 1 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_large_random () =
  let rng = Dsutil.Rng.create 31 in
  let h = Heap.create ~compare:Int.compare in
  let keys = List.init 5000 (fun _ -> Dsutil.Rng.int rng 1000) in
  List.iter (fun k -> Heap.push h k ()) keys;
  let rec drain last acc =
    match Heap.pop h with
    | None -> acc
    | Some (k, ()) ->
      Alcotest.(check bool) "non-decreasing" true (k >= last);
      drain k (acc + 1)
  in
  Alcotest.(check int) "drained all" 5000 (drain min_int 0)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO among equal keys" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "large random drain" `Quick test_large_random;
  ]
