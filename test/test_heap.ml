module Heap = Dsutil.Heap

let test_empty () =
  let h = Heap.create ~compare:Int.compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_ordering () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (fun k -> Heap.push h k (string_of_int k)) [ 5; 3; 8; 1; 9; 2 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (k, _) ->
      order := k :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ] (List.rev !order)

let test_fifo_ties () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (fun v -> Heap.push h 1 v) [ "a"; "b"; "c" ];
  let vs =
    List.init 3 (fun _ ->
        match Heap.pop h with Some (_, v) -> v | None -> assert false)
  in
  Alcotest.(check (list string)) "FIFO among ties" [ "a"; "b"; "c" ] vs

let test_interleaved () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 4 "d";
  Heap.push h 2 "b";
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some (2, "b"));
  ignore (Heap.pop h);
  Heap.push h 1 "a";
  Heap.push h 3 "c";
  Alcotest.(check bool) "pop a" true (Heap.pop h = Some (1, "a"));
  Alcotest.(check bool) "pop c" true (Heap.pop h = Some (3, "c"));
  Alcotest.(check bool) "pop d" true (Heap.pop h = Some (4, "d"))

let test_to_sorted_list () =
  let h = Heap.create ~compare:Int.compare in
  Alcotest.(check bool) "empty sorted list" true (Heap.to_sorted_list h = []);
  List.iter (fun k -> Heap.push h k k) [ 3; 1; 2 ];
  Alcotest.(check bool) "sorted list" true
    (Heap.to_sorted_list h = [ (1, 1); (2, 2); (3, 3) ]);
  Alcotest.(check int) "non-destructive" 3 (Heap.length h)

let test_clear () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 1 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_min_key () =
  let h = Heap.create ~compare:Int.compare in
  Alcotest.check_raises "empty heap"
    (Invalid_argument "Heap.min_key: empty heap") (fun () ->
      ignore (Heap.min_key h));
  Heap.push h 7 "g";
  Heap.push h 2 "b";
  Heap.push h 5 "e";
  Alcotest.(check int) "min without pop" 2 (Heap.min_key h);
  Alcotest.(check int) "length untouched" 3 (Heap.length h)

(* --- space-leak regressions: released slots must not pin entries ---

   The helpers are [@inline never] so the tested values live only in
   their (discarded) stack frames, not the caller's, by the time the
   caller forces a major collection. *)

let[@inline never] push_and_pop_tracked h =
  let v = ref 42 in
  let w = Weak.create 1 in
  Weak.set w 0 (Some v);
  Heap.push h 0 v;
  (* Key 0 is the minimum: this pop removes exactly [v]. *)
  ignore (Heap.pop h);
  w

let test_pop_releases_value () =
  let h = Heap.create ~compare:Int.compare in
  (* Keep the heap non-empty so the backing array itself stays live; the
     leak under test is a stale pointer in a released slot. *)
  Heap.push h 5 (ref 0);
  let w = push_and_pop_tracked h in
  Gc.full_major ();
  Alcotest.(check bool) "popped value collected" false (Weak.check w 0);
  Alcotest.(check int) "heap intact" 1 (Heap.length h)

let[@inline never] fill_tracked h count =
  let w = Weak.create count in
  for i = 0 to count - 1 do
    let v = ref i in
    Weak.set w i (Some v);
    Heap.push h i v
  done;
  w

let test_drain_releases_everything () =
  let h = Heap.create ~compare:Int.compare in
  (* 40 entries cross the 16 → 32 → 64 growth path: spare slots created
     by [grow] must not retain entries either. *)
  let w = fill_tracked h 40 in
  for _ = 1 to 40 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  for i = 0 to 39 do
    Alcotest.(check bool)
      (Printf.sprintf "entry %d collected" i)
      false (Weak.check w i)
  done;
  Heap.push h 1 (ref 1);
  Alcotest.(check bool) "heap reusable" true (Heap.pop h <> None)

let test_clear_releases_everything () =
  let h = Heap.create ~compare:Int.compare in
  let w = fill_tracked h 10 in
  Heap.clear h;
  Gc.full_major ();
  for i = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "entry %d collected" i)
      false (Weak.check w i)
  done

let test_large_random () =
  let rng = Dsutil.Rng.create 31 in
  let h = Heap.create ~compare:Int.compare in
  let keys = List.init 5000 (fun _ -> Dsutil.Rng.int rng 1000) in
  List.iter (fun k -> Heap.push h k ()) keys;
  let rec drain last acc =
    match Heap.pop h with
    | None -> acc
    | Some (k, ()) ->
      Alcotest.(check bool) "non-decreasing" true (k >= last);
      drain k (acc + 1)
  in
  Alcotest.(check int) "drained all" 5000 (drain min_int 0)

(* The flat event queue claims pop-order identity with
   [Heap.create ~compare:Float.compare]: (time, insertion seq) is a
   strict total order, so arity and layout cannot matter.  Drive both
   through the same randomized push/pop stream — a coarse key grid forces
   plenty of ties, so FIFO tie-breaking is what's really under test. *)
let test_fheap_matches_generic_heap () =
  let module Fheap = Dsutil.Fheap in
  let rng = Dsutil.Rng.create 4242 in
  let fh = Fheap.create ~dummy_h:(-1) ~dummy_p:"" in
  let h = Heap.create ~compare:Float.compare in
  let next_id = ref 0 in
  let popped = ref 0 in
  let check_pop () =
    match Heap.pop h with
    | None -> Alcotest.(check bool) "both empty" true (Fheap.is_empty fh)
    | Some (k, id) ->
      incr popped;
      let got =
        Fheap.pop_apply fh (fun time handler meta payload ->
            Alcotest.(check (float 0.0)) "same key" k time;
            Alcotest.(check int) "same entry" id meta;
            Alcotest.(check int) "handler rides along" id handler;
            Alcotest.(check string) "payload rides along" (string_of_int id)
              payload)
      in
      Alcotest.(check bool) "flat heap not empty" true got
  in
  for _round = 1 to 4 do
    for _ = 1 to 3000 do
      if Dsutil.Rng.int rng 3 = 0 then check_pop ()
      else begin
        (* 40 distinct keys over thousands of pushes: ties everywhere *)
        let k = float_of_int (Dsutil.Rng.int rng 40) in
        let id = !next_id in
        incr next_id;
        Heap.push h k id;
        Fheap.push fh k id id (string_of_int id)
      end
    done;
    Alcotest.(check int) "same length" (Heap.length h) (Fheap.length fh);
    if not (Heap.is_empty h) then
      Alcotest.(check (float 0.0)) "same min key" (Heap.min_key h)
        (Fheap.min_key fh)
  done;
  while not (Heap.is_empty h) do
    check_pop ()
  done;
  Alcotest.(check bool) "flat heap drained" true (Fheap.is_empty fh);
  Alcotest.(check bool) "popped plenty" true (!popped > 5000)

let test_fheap_clear () =
  let module Fheap = Dsutil.Fheap in
  let fh = Fheap.create ~dummy_h:0 ~dummy_p:() in
  for i = 1 to 100 do
    Fheap.push fh (float_of_int (i mod 7)) i 0 ()
  done;
  Fheap.clear fh;
  Alcotest.(check bool) "empty after clear" true (Fheap.is_empty fh);
  Alcotest.(check int) "length 0" 0 (Fheap.length fh);
  Alcotest.(check bool) "pop on empty" false
    (Fheap.pop_apply fh (fun _ _ _ _ -> Alcotest.fail "popped from empty"));
  (* reusable after clear, slots recycle correctly *)
  Fheap.push fh 2.0 1 10 ();
  Fheap.push fh 1.0 2 20 ();
  let order = ref [] in
  while Fheap.pop_apply fh (fun _ _ meta _ -> order := meta :: !order) do
    ()
  done;
  Alcotest.(check (list int)) "ordered after reuse" [ 20; 10 ] (List.rev !order)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO among equal keys" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "min_key" `Quick test_min_key;
    Alcotest.test_case "pop releases value (no leak)" `Quick
      test_pop_releases_value;
    Alcotest.test_case "drain releases everything (grow path)" `Quick
      test_drain_releases_everything;
    Alcotest.test_case "clear releases everything" `Quick
      test_clear_releases_everything;
    Alcotest.test_case "large random drain" `Quick test_large_random;
    Alcotest.test_case "flat heap matches generic heap" `Quick
      test_fheap_matches_generic_heap;
    Alcotest.test_case "flat heap clear and reuse" `Quick test_fheap_clear;
  ]
