module Planner = Arbitrary.Planner
module Tree = Arbitrary.Tree
module Analysis = Arbitrary.Analysis

let test_read_heavy_prefers_few_levels () =
  let t = Planner.plan ~n:60 ~p:0.9 ~read_fraction:0.99 () in
  Alcotest.(check bool) "at most 2 levels" true (Tree.num_physical_levels t <= 2)

let test_write_heavy_prefers_many_levels () =
  let t = Planner.plan ~n:60 ~p:0.9 ~read_fraction:0.01 () in
  Alcotest.(check bool) "many levels" true (Tree.num_physical_levels t >= 10)

let test_balanced_in_between () =
  let few =
    Tree.num_physical_levels (Planner.plan ~n:60 ~p:0.9 ~read_fraction:0.95 ())
  in
  let many =
    Tree.num_physical_levels (Planner.plan ~n:60 ~p:0.9 ~read_fraction:0.05 ())
  in
  let mid =
    Tree.num_physical_levels (Planner.plan ~n:60 ~p:0.9 ~read_fraction:0.5 ())
  in
  Alcotest.(check bool) "monotone spectrum" true (few <= mid && mid <= many)

let test_spectrum_sorted () =
  let spec = Planner.spectrum ~n:40 ~p:0.8 ~read_fraction:0.5 () in
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-12 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending scores" true (sorted spec);
  Alcotest.(check bool) "non-empty" true (List.length spec > 1)

let test_score_matches_components () =
  let tree = Tree.of_spec "1-3-5" in
  let p = 0.7 in
  let expected =
    (0.6 *. Analysis.expected_read_load tree ~p)
    +. (0.4 *. Analysis.expected_write_load tree ~p)
  in
  Alcotest.(check (float 1e-9)) "expected-load objective" expected
    (Planner.score tree ~p ~read_fraction:0.6 ~objective:Planner.Expected_load)

let test_cost_objective () =
  let tree = Tree.of_spec "1-3-5" in
  let score =
    Planner.score tree ~p:0.7 ~read_fraction:0.5
      ~objective:Planner.Communication_cost
  in
  (* 0.5*2 + 0.5*4 = 3 *)
  Alcotest.(check (float 1e-9)) "cost objective" 3.0 score

let test_validation () =
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Planner: read_fraction out of [0,1]") (fun () ->
      ignore
        (Planner.score (Tree.of_spec "1-3-5") ~p:0.7 ~read_fraction:2.0
           ~objective:Planner.Expected_load))

let test_candidates_satisfy_assumption () =
  List.iter
    (fun n ->
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (Printf.sprintf "n=%d spec=%s" n (Tree.to_spec t))
            true (Tree.satisfies_assumption t))
        (Planner.candidates ~n))
    [ 5; 33; 64; 65; 129; 501 ]

let test_large_n_candidate_cap () =
  Alcotest.(check bool) "capped sweep" true
    (List.length (Planner.candidates ~n:2000) <= 70)

let test_generalized_planner () =
  (* The generalized planner can only do as well or better than the
     classic rule on its own metric, and it returns a valid instance. *)
  List.iter
    (fun read_fraction ->
      let g = Planner.plan_generalized ~n:48 ~p:0.8 ~read_fraction () in
      let tree = Arbitrary.Generalized.tree g in
      Alcotest.(check bool) "assumption holds" true (Tree.satisfies_assumption tree);
      let classic_best = Planner.plan ~n:48 ~p:0.8 ~read_fraction () in
      let classic_g = Arbitrary.Generalized.classic classic_best in
      let score x =
        let rf = read_fraction and wf = 1.0 -. read_fraction in
        let ra = Arbitrary.Generalized.read_availability x ~p:0.8 in
        let wa = Arbitrary.Generalized.write_availability x ~p:0.8 in
        (rf *. ((ra *. (Arbitrary.Generalized.read_load x -. 1.0)) +. 1.0))
        +. (wf *. ((wa *. Arbitrary.Generalized.write_load x) +. (1.0 -. wa)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "generalized <= classic at rf=%.2f" read_fraction)
        true
        (score g <= score classic_g +. 1e-9))
    [ 0.1; 0.5; 0.9 ]

let suite =
  [
    Alcotest.test_case "read-heavy prefers few levels" `Quick
      test_read_heavy_prefers_few_levels;
    Alcotest.test_case "write-heavy prefers many levels" `Quick
      test_write_heavy_prefers_many_levels;
    Alcotest.test_case "balanced mid-spectrum" `Quick test_balanced_in_between;
    Alcotest.test_case "spectrum sorted" `Quick test_spectrum_sorted;
    Alcotest.test_case "score matches components" `Quick test_score_matches_components;
    Alcotest.test_case "cost objective" `Quick test_cost_objective;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "candidates satisfy assumption 3.1" `Quick
      test_candidates_satisfy_assumption;
    Alcotest.test_case "large-n candidate cap" `Quick test_large_n_candidate_cap;
    Alcotest.test_case "generalized planner" `Quick test_generalized_planner;
  ]
