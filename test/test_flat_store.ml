(* Equivalence suite for the array-backed store: a randomized op stream
   drives the flat implementation and a plain-hashtable reference model
   side by side and asserts identical observable state after every step.
   The key universe deliberately straddles the dense/spill boundary —
   small ids, ids just under and over the dense limit (2^16), and
   negative ids — so both representations are exercised by one stream.
   Also holds the regression test for the [stage_accum] replay path,
   which used to rebuild the staged batch by quadratic list append. *)

module Store = Replication.Store
module Timestamp = Replication.Timestamp
module Batch = Replication.Batch
module Rng = Dsutil.Rng

let ts v s = Timestamp.make ~version:v ~sid:s

(* --- reference model ---------------------------------------------------

   The observable contract of store.mli, implemented the obvious way:
   one hashtable of committed (ts, value) per key, one of staged single
   writes per op, one of staged batches (write-order lists) per op. *)

module Model = struct
  type t = {
    committed : (int, Timestamp.t * string) Hashtbl.t;
    pending : (int, int * Timestamp.t * string) Hashtbl.t;
    pending_batch : (int, (int * Timestamp.t * string) list ref) Hashtbl.t;
  }

  let create () =
    {
      committed = Hashtbl.create 16;
      pending = Hashtbl.create 16;
      pending_batch = Hashtbl.create 16;
    }

  let read t ~key =
    match Hashtbl.find_opt t.committed key with
    | Some (ts, v) -> (ts, v)
    | None -> (Timestamp.zero, "")

  let install t ~key ~ts ~value =
    let cur, _ = read t ~key in
    if Timestamp.newer_than ts cur then begin
      Hashtbl.replace t.committed key (ts, value);
      true
    end
    else false

  let stage t ~op ~key ~ts ~value =
    Hashtbl.remove t.pending_batch op;
    Hashtbl.replace t.pending op (key, ts, value)

  let stage_many t ~op writes =
    Hashtbl.remove t.pending op;
    Hashtbl.replace t.pending_batch op (ref writes)

  let stage_accum t ~op ~key ~ts ~value =
    match Hashtbl.find_opt t.pending_batch op with
    | Some l -> l := !l @ [ (key, ts, value) ]
    | None -> (
      match Hashtbl.find_opt t.pending op with
      | Some w0 ->
        Hashtbl.remove t.pending op;
        Hashtbl.replace t.pending_batch op (ref [ w0; (key, ts, value) ])
      | None -> Hashtbl.replace t.pending op (key, ts, value))

  let commit_staged t ~op =
    match Hashtbl.find_opt t.pending op with
    | Some (key, ts, value) ->
      Hashtbl.remove t.pending op;
      ignore (install t ~key ~ts ~value);
      true
    | None -> (
      match Hashtbl.find_opt t.pending_batch op with
      | Some l ->
        Hashtbl.remove t.pending_batch op;
        List.iter (fun (key, ts, value) -> ignore (install t ~key ~ts ~value)) !l;
        true
      | None -> false)

  let abort_staged t ~op =
    Hashtbl.remove t.pending op;
    Hashtbl.remove t.pending_batch op

  let staged_count t = Hashtbl.length t.pending + Hashtbl.length t.pending_batch

  let keys t =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.committed []
    |> List.sort_uniq Int.compare
end

(* --- randomized driver ------------------------------------------------- *)

let dense_limit = 1 lsl 16

(* Mixed key universe: dense low ids, boundary ids, spill ids. *)
let random_key rng =
  match Rng.int rng 6 with
  | 0 | 1 | 2 -> Rng.int rng 64
  | 3 -> dense_limit - 1 - Rng.int rng 4
  | 4 -> dense_limit + Rng.int rng 1000
  | _ -> -1 - Rng.int rng 1000

let random_ts rng = ts (1 + Rng.int rng 8) (Rng.int rng 9)
let random_value rng = Printf.sprintf "v%d" (Rng.int rng 1000)

let check_key store model key =
  let mts, mv = Model.read model ~key in
  let sts, sv = Store.read store ~key in
  Alcotest.(check bool)
    (Printf.sprintf "key %d timestamp" key)
    true
    (Timestamp.equal mts sts);
  Alcotest.(check string) (Printf.sprintf "key %d value" key) mv sv;
  (* flat accessors agree with [read] *)
  Alcotest.(check int) "version_of" mts.Timestamp.version
    (Store.version_of store ~key);
  Alcotest.(check int) "sid_of" mts.Timestamp.sid (Store.sid_of store ~key);
  Alcotest.(check string) "value_of" mv (Store.value_of store ~key)

let check_full store model touched =
  Hashtbl.iter (fun key () -> check_key store model key) touched;
  Alcotest.(check int) "staged_count" (Model.staged_count model)
    (Store.staged_count store);
  Alcotest.(check (list int)) "keys" (Model.keys model) (Store.keys store)

let test_equivalence () =
  let rng = Rng.create 20250808 in
  let store = Store.create () and model = Model.create () in
  let touched = Hashtbl.create 64 in
  let ops = 4000 in
  for step = 1 to ops do
    let op = Rng.int rng 12 in
    (match Rng.int rng 10 with
    | 0 | 1 | 2 ->
      let key = random_key rng and ts = random_ts rng in
      let value = random_value rng in
      Hashtbl.replace touched key ();
      Alcotest.(check bool) "install agrees"
        (Model.install model ~key ~ts ~value)
        (Store.install store ~key ~ts ~value)
    | 3 | 4 ->
      let key = random_key rng and ts = random_ts rng in
      let value = random_value rng in
      Hashtbl.replace touched key ();
      Model.stage model ~op ~key ~ts ~value;
      Store.stage store ~op ~key ~ts ~value
    | 5 ->
      let n = Rng.int rng 5 in
      let writes =
        List.init n (fun _ ->
            let key = random_key rng in
            Hashtbl.replace touched key ();
            (key, random_ts rng, random_value rng))
      in
      Model.stage_many model ~op writes;
      Store.stage_many store ~op (Batch.of_list writes)
    | 6 | 7 ->
      let key = random_key rng and ts = random_ts rng in
      let value = random_value rng in
      Hashtbl.replace touched key ();
      Model.stage_accum model ~op ~key ~ts ~value;
      Store.stage_accum store ~op ~key ~ts ~value
    | 8 ->
      Alcotest.(check bool) "commit agrees"
        (Model.commit_staged model ~op)
        (Store.commit_staged store ~op)
    | _ ->
      Model.abort_staged model ~op;
      Store.abort_staged store ~op);
    if step mod 50 = 0 then check_full store model touched
  done;
  (* flush every op id and compare the final committed state *)
  for op = 0 to 11 do
    Alcotest.(check bool) "final commit agrees"
      (Model.commit_staged model ~op)
      (Store.commit_staged store ~op)
  done;
  check_full store model touched

(* Staged single writes and batches must round-trip through the
   inspection accessors identically to the model. *)
let test_staged_inspection () =
  let store = Store.create () in
  Alcotest.(check bool) "nothing staged" false (Store.has_staged store ~op:1);
  Store.stage store ~op:1 ~key:5 ~ts:(ts 2 1) ~value:"a";
  Store.stage store ~op:1 ~key:6 ~ts:(ts 3 0) ~value:"b";
  (* last-write-wins per op id *)
  (match Store.staged store ~op:1 with
  | Some (k, t, v) ->
    Alcotest.(check int) "staged key" 6 k;
    Alcotest.(check bool) "staged ts" true (Timestamp.equal t (ts 3 0));
    Alcotest.(check string) "staged value" "b" v
  | None -> Alcotest.fail "expected a staged write");
  (* stage_many clobbers the single stage, and vice versa *)
  Store.stage_many store ~op:1
    (Batch.of_list [ (1, ts 1 0, "x"); (2, ts 1 0, "y") ]);
  Alcotest.(check bool) "single stage gone" false (Store.has_staged store ~op:1);
  Alcotest.(check int) "batch size" 2 (Store.staged_batch_size store ~op:1);
  (match Store.staged_many store ~op:1 with
  | Some b -> Alcotest.(check int) "batch length" 2 (Batch.length b)
  | None -> Alcotest.fail "expected a staged batch");
  Store.stage store ~op:1 ~key:9 ~ts:(ts 9 0) ~value:"z";
  Alcotest.(check int) "batch gone" 0 (Store.staged_batch_size store ~op:1);
  Alcotest.(check int) "one staged entry" 1 (Store.staged_count store)

(* Regression for the quadratic replay: [stage_accum] used to rebuild the
   staged batch with [writes @ [w]] per record, O(k^2) over a k-record
   batch.  Replaying a large batched prepare must stay linear — this run
   is ~30k records (the old code walked ~450M cons cells here) — and
   rebuild exactly the batch that was staged. *)
let test_stage_accum_large_replay () =
  let store = Store.create () in
  let n = 30_000 in
  for i = 0 to n - 1 do
    Store.stage_accum store ~op:7 ~key:(i mod 1000) ~ts:(ts (i + 1) 0)
      ~value:(string_of_int i)
  done;
  Alcotest.(check int) "all records accumulated" n
    (Store.staged_batch_size store ~op:7);
  (* write order is preserved in the rebuilt batch *)
  (match Store.staged_many store ~op:7 with
  | Some b ->
    Alcotest.(check int) "first key" 0 (Batch.key b 0);
    Alcotest.(check int) "last key" ((n - 1) mod 1000) (Batch.key b (n - 1));
    Alcotest.(check int) "last version" n (Batch.version b (n - 1))
  | None -> Alcotest.fail "expected a staged batch");
  Alcotest.(check bool) "commit applies" true (Store.commit_staged store ~op:7);
  (* each key's newest write (largest version) wins *)
  let t0, v0 = Store.read store ~key:0 in
  Alcotest.(check int) "key 0 newest version" (n - 1000 + 1)
    t0.Timestamp.version;
  Alcotest.(check string) "key 0 newest value" (string_of_int (n - 1000)) v0;
  Alcotest.(check int) "nothing left staged" 0 (Store.staged_count store)

(* A single re-delivered Stage record (no batch context) must keep plain
   last-write-wins semantics; a second accum under the same op promotes
   the pair to a batch. *)
let test_stage_accum_promotion () =
  let store = Store.create () in
  Store.stage_accum store ~op:3 ~key:1 ~ts:(ts 1 0) ~value:"a";
  Alcotest.(check bool) "single stage first" true (Store.has_staged store ~op:3);
  Alcotest.(check int) "no batch yet" 0 (Store.staged_batch_size store ~op:3);
  Store.stage_accum store ~op:3 ~key:2 ~ts:(ts 1 0) ~value:"b";
  Alcotest.(check bool) "promoted away from single" false
    (Store.has_staged store ~op:3);
  Alcotest.(check int) "promoted to a 2-batch" 2
    (Store.staged_batch_size store ~op:3);
  Alcotest.(check bool) "commit applies both" true
    (Store.commit_staged store ~op:3);
  Alcotest.(check string) "first write landed" "a"
    (snd (Store.read store ~key:1));
  Alcotest.(check string) "second write landed" "b"
    (snd (Store.read store ~key:2))

(* Dense-array growth must not disturb ordering of [keys] across the
   spill boundary. *)
let test_keys_across_spill () =
  let store = Store.create () in
  let ks = [ -5; 3; dense_limit - 1; dense_limit + 2; 0; 40_000 ] in
  List.iter
    (fun key -> ignore (Store.install store ~key ~ts:(ts 1 0) ~value:"v"))
    ks;
  Alcotest.(check (list int)) "ascending across representations"
    (List.sort Int.compare ks) (Store.keys store)

let suite =
  [
    Alcotest.test_case "randomized equivalence vs reference model" `Quick
      test_equivalence;
    Alcotest.test_case "staged inspection accessors" `Quick
      test_staged_inspection;
    Alcotest.test_case "stage_accum large replayed batch" `Quick
      test_stage_accum_large_replay;
    Alcotest.test_case "stage_accum single-record promotion" `Quick
      test_stage_accum_promotion;
    Alcotest.test_case "keys across the spill boundary" `Quick
      test_keys_across_spill;
  ]
