module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Grid = Quorum.Grid
module Maekawa = Quorum.Maekawa

let feq a b = abs_float (a -. b) < 1e-9

let test_grid_costs () =
  let g = Grid.create ~rows:3 ~cols:4 in
  Alcotest.(check int) "read cost = cols" 4 (Grid.read_cost g);
  Alcotest.(check int) "write cost = rows+cols-1" 6 (Grid.write_cost g)

let test_grid_quorum_shapes () =
  let g = Grid.create ~rows:3 ~cols:3 in
  let rng = Rng.create 11 in
  let alive = Quorum.Protocol.all_alive (Grid.protocol g) in
  (match Grid.read_quorum g ~alive ~rng with
  | None -> Alcotest.fail "read quorum must exist"
  | Some q -> Alcotest.(check int) "read size" 3 (Bitset.cardinal q));
  match Grid.write_quorum g ~alive ~rng with
  | None -> Alcotest.fail "write quorum must exist"
  | Some q -> Alcotest.(check int) "write size" 5 (Bitset.cardinal q)

let test_grid_write_needs_full_column () =
  let g = Grid.create ~rows:2 ~cols:2 in
  let rng = Rng.create 13 in
  (* Kill one site of each column: reads fine, writes impossible. *)
  let alive = Bitset.of_list 4 [ 0; 3 ] in
  Alcotest.(check bool) "read ok" true (Grid.read_quorum g ~alive ~rng <> None);
  Alcotest.(check bool) "write blocked" true
    (Grid.write_quorum g ~alive ~rng = None)

let test_grid_loads () =
  let g = Grid.create ~rows:4 ~cols:4 in
  Alcotest.(check bool) "read load 1/rows" true (feq (Grid.read_load g) 0.25);
  Alcotest.(check bool) "write load" true
    (feq (Grid.write_load g) ((1.0 /. 4.0) +. (3.0 /. 4.0 /. 4.0)))

let test_grid_square () =
  let g = Grid.square ~n:10 in
  Alcotest.(check int) "3x3 from 10" 9 (Grid.universe_size g)

let test_grid_enumeration_counts () =
  let g = Grid.create ~rows:2 ~cols:3 in
  Alcotest.(check int) "reads: rows^cols" 8
    (List.length (List.of_seq (Grid.enumerate_read_quorums g)));
  Alcotest.(check int) "writes: cols * rows^(cols-1)" 12
    (List.length (List.of_seq (Grid.enumerate_write_quorums g)))

let test_maekawa_quorum_size () =
  let m = Maekawa.create ~k:4 in
  Alcotest.(check int) "2k-1" 7 (Maekawa.quorum_size m);
  Alcotest.(check int) "n = k^2" 16 (Maekawa.universe_size m);
  Alcotest.(check bool) "load" true (feq (Maekawa.load m) (7.0 /. 16.0))

let test_maekawa_quorums_intersect_pairwise () =
  let m = Maekawa.create ~k:3 in
  let qs = List.of_seq (Maekawa.enumerate_read_quorums m) in
  Alcotest.(check int) "n quorums" 9 (List.length qs);
  List.iteri
    (fun i qi ->
      List.iteri
        (fun j qj ->
          if i < j then
            Alcotest.(check bool) "row-col quorums intersect" true
              (Bitset.intersects qi qj))
        qs)
    qs

let test_maekawa_assembly_size () =
  let m = Maekawa.create ~k:3 in
  let rng = Rng.create 17 in
  let alive = Quorum.Protocol.all_alive (Maekawa.protocol m) in
  match Maekawa.read_quorum m ~alive ~rng with
  | None -> Alcotest.fail "quorum must exist when all alive"
  | Some q -> Alcotest.(check int) "size 2k-1" 5 (Bitset.cardinal q)

let test_maekawa_of_n () =
  let m = Maekawa.of_n ~n:10 in
  Alcotest.(check int) "k=3 from n=10" 9 (Maekawa.universe_size m)

let suite =
  [
    Alcotest.test_case "grid costs" `Quick test_grid_costs;
    Alcotest.test_case "grid quorum shapes" `Quick test_grid_quorum_shapes;
    Alcotest.test_case "grid write needs a full column" `Quick
      test_grid_write_needs_full_column;
    Alcotest.test_case "grid loads" `Quick test_grid_loads;
    Alcotest.test_case "grid square constructor" `Quick test_grid_square;
    Alcotest.test_case "grid enumeration counts" `Quick
      test_grid_enumeration_counts;
    Alcotest.test_case "maekawa quorum size" `Quick test_maekawa_quorum_size;
    Alcotest.test_case "maekawa pairwise intersection" `Quick
      test_maekawa_quorums_intersect_pairwise;
    Alcotest.test_case "maekawa assembly size" `Quick test_maekawa_assembly_size;
    Alcotest.test_case "maekawa of_n" `Quick test_maekawa_of_n;
  ]
