(* Edge cases for the coordinator and the low-level quorum RPC. *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Coordinator = Replication.Coordinator
module Replica = Replication.Replica
module Quorum_rpc = Replication.Quorum_rpc
module Timestamp = Replication.Timestamp
module Stats = Dsutil.Stats

let build ?(spec = "1-3-5") ?(seed = 42) ?(loss_rate = 0.0) ?config () =
  let tree = Arbitrary.Tree.of_spec spec in
  let proto = Arbitrary.Quorums.protocol tree in
  let n = Arbitrary.Tree.n tree in
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n:(n + 2) ~loss_rate () in
  let replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
  let coord = Coordinator.create ~site:n ~net ~proto ?config () in
  let rpc = Quorum_rpc.create ~site:(n + 1) ~net ~proto () in
  (engine, net, replicas, coord, rpc)

let test_single_replica_system () =
  let engine, net, _, coord, _ = build ~spec:"1" () in
  let wrote = ref None and read = ref None in
  Coordinator.write coord ~key:0 ~value:"solo" (fun r ->
      wrote := r;
      Coordinator.read coord ~key:0 (fun r -> read := r));
  Engine.run engine;
  Alcotest.(check bool) "write ok" true (!wrote <> None);
  (match !read with
  | Some { Coordinator.value; _ } -> Alcotest.(check string) "value" "solo" value
  | None -> Alcotest.fail "read failed");
  (* The sole replica down: everything fails. *)
  Network.crash net 0;
  let failed = ref false in
  Coordinator.read coord ~key:0 (fun r -> failed := r = None);
  Engine.run engine;
  Alcotest.(check bool) "read fails" true !failed

let test_write_survives_message_loss () =
  (* 20% loss: per-phase timeouts retry with fresh quorums and commit
     resends absorb lost commit messages.  Several seeds for robustness. *)
  let ok = ref 0 in
  List.iter
    (fun seed ->
      let engine, _, _, coord, _ =
        build ~loss_rate:0.2 ~seed
          ~config:{ Coordinator.default_config with max_retries = 15 } ()
      in
      Coordinator.write coord ~key:1 ~value:"lossy" (fun r ->
          if r <> None then incr ok);
      Engine.run engine)
    [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check bool)
    (Printf.sprintf "lossy writes succeed with retry budget (%d/6)" !ok)
    true (!ok >= 5)

let test_op_succeeds_after_partition_heals () =
  let engine, net, _, coord, _ = build () in
  (* Separate the coordinator from level 1 so the first attempts fail; heal
     before the retry budget runs out. *)
  Network.partition net [ [ 8; 3; 4; 5; 6; 7 ]; [ 0; 1; 2 ] ];
  Engine.schedule engine ~delay:30.0 (fun () -> Network.heal net);
  let result = ref None in
  Coordinator.read coord ~key:0 (fun r -> result := r);
  Engine.run engine;
  Alcotest.(check bool) "read eventually succeeds" true (!result <> None);
  Alcotest.(check bool) "retries were needed" true
    ((Coordinator.metrics coord).Coordinator.retries >= 1)

let test_latency_stats_recorded () =
  let engine, _, _, coord, _ = build () in
  for i = 0 to 4 do
    Coordinator.write coord ~key:i ~value:"x" (fun _ -> ())
  done;
  Engine.run engine;
  let m = Coordinator.metrics coord in
  Alcotest.(check int) "five writes measured" 5 (Stats.count m.Coordinator.write_latency);
  Alcotest.(check bool) "positive latency" true
    (Stats.mean m.Coordinator.write_latency > 0.0);
  Alcotest.(check int) "no read latencies" 0 (Stats.count m.Coordinator.read_latency)

let test_concurrent_ops_different_keys () =
  let engine, _, _, coord, _ = build () in
  let done_count = ref 0 in
  for i = 0 to 9 do
    Coordinator.write coord ~key:i ~value:(string_of_int i) (fun r ->
        if r <> None then incr done_count)
  done;
  Engine.run engine;
  Alcotest.(check int) "all ten writes complete" 10 !done_count;
  let read_back = ref 0 in
  for i = 0 to 9 do
    Coordinator.read coord ~key:i (fun r ->
        match r with
        | Some { Coordinator.value; _ } when value = string_of_int i ->
          incr read_back
        | _ -> ())
  done;
  Engine.run engine;
  Alcotest.(check int) "all values correct" 10 !read_back

(* Regression: caller-level re-issues must never deposit into the shared
   retry budget.  Every operation entry used to deposit unconditionally,
   so a storm of re-issued failures earned back the very tokens its
   internal retries spent — the budget never reached sustained
   suppression.  With [~retry:true] the deposit is skipped: a storm with
   zero genuine first attempts drains the bucket once and stays drained. *)
let test_reissue_storm_cannot_refill_budget () =
  let tree = Arbitrary.Tree.of_spec "1-3-5" in
  let proto = Arbitrary.Quorums.protocol tree in
  let n = Arbitrary.Tree.n tree in
  let engine = Engine.create ~seed:9 () in
  let net = Network.create ~engine ~n:(n + 1) () in
  let _replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
  let budget =
    Detect.Budget.create ~config:{ Detect.Budget.ratio = 0.5; burst = 3.0 } ()
  in
  let coord =
    Coordinator.create ~site:n ~net ~proto ~budget
      ~config:
        { Coordinator.default_config with max_retries = 5; timeout = 5.0 }
      ()
  in
  (* Every replica down: each re-issue can only fail, retrying until the
     budget refuses. *)
  for site = 0 to n - 1 do
    Network.crash net site
  done;
  let failures = ref 0 in
  for i = 0 to 19 do
    Coordinator.write coord ~retry:true ~key:(i mod 4) ~value:"storm"
      (fun r -> if r = None then incr failures)
  done;
  Engine.run engine;
  Alcotest.(check int) "every re-issue failed" 20 !failures;
  Alcotest.(check int) "zero first attempts recorded" 0
    (Detect.Budget.attempts budget);
  Alcotest.(check int) "only the initial burst was granted" 3
    (Detect.Budget.granted budget);
  Alcotest.(check bool) "bucket drained for good" true
    (Detect.Budget.tokens budget < 1.0);
  let m = Coordinator.metrics coord in
  Alcotest.(check bool) "suppression is sustained" true
    (m.Coordinator.retries_suppressed >= 17);
  (* A second wave meets the same wall: no grants, only suppression. *)
  let suppressed_before = Detect.Budget.suppressed budget in
  for i = 0 to 9 do
    Coordinator.write coord ~retry:true ~key:(i mod 4) ~value:"storm2"
      (fun _ -> ())
  done;
  Engine.run engine;
  Alcotest.(check int) "still only the initial burst" 3
    (Detect.Budget.granted budget);
  Alcotest.(check bool) "second wave only suppressed" true
    (Detect.Budget.suppressed budget > suppressed_before)

let test_rpc_retry_flag_skips_deposit () =
  (* Same contract one layer down: [Quorum_rpc.query ~retry:true] leaves
     the bucket untouched while a plain call deposits. *)
  let tree = Arbitrary.Tree.of_spec "1-3" in
  let proto = Arbitrary.Quorums.protocol tree in
  let n = Arbitrary.Tree.n tree in
  let engine = Engine.create ~seed:4 () in
  let net = Network.create ~engine ~n:(n + 1) () in
  let _replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
  let budget =
    Detect.Budget.create ~config:{ Detect.Budget.ratio = 0.5; burst = 2.0 } ()
  in
  let rpc = Quorum_rpc.create ~site:n ~net ~proto ~budget () in
  Quorum_rpc.query rpc ~retry:true ~key:0 (fun _ -> ());
  Engine.run engine;
  Alcotest.(check int) "re-issue deposits nothing" 0
    (Detect.Budget.attempts budget);
  Quorum_rpc.query rpc ~key:0 (fun _ -> ());
  Engine.run engine;
  Alcotest.(check int) "first attempt deposits" 1
    (Detect.Budget.attempts budget)

let test_rpc_query_no_quorum () =
  let engine, net, _, _, rpc = build () in
  List.iter (Network.crash net) [ 0; 1; 2 ];
  let result = ref (Some (Timestamp.zero, "unset")) in
  Quorum_rpc.query rpc ~key:0 (fun r -> result := r);
  Engine.run engine;
  Alcotest.(check bool) "None without read quorum" true (!result = None)

let test_rpc_forced_ts_idempotent () =
  let engine, _, replicas, _, rpc = build () in
  let ts = Timestamp.make ~version:5 ~sid:2 in
  let first = ref None and second = ref None in
  Quorum_rpc.write rpc ~key:3 ~ts ~value:"once" (fun r ->
      first := r;
      Quorum_rpc.write rpc ~key:3 ~ts ~value:"once" (fun r -> second := r));
  Engine.run engine;
  Alcotest.(check bool) "both writes acknowledged" true
    (!first <> None && !second <> None);
  (* Same timestamp: applied at most once per replica. *)
  let applied =
    Array.fold_left (fun acc r -> acc + Replica.writes_applied r) 0 replicas
  in
  Alcotest.(check bool) "no double apply" true (applied <= 8)

let test_rpc_commit_incomplete_on_crash () =
  let engine, net, _, _, rpc = build ~spec:"2-2" () in
  (* Prepare on the only... with spec 2-2 both levels have 2 replicas; the
     write quorum is one full level.  Crash one member after prepare. *)
  let outcome = ref None in
  Quorum_rpc.prepare rpc ~key:0 ~ts:(Timestamp.make ~version:1 ~sid:9)
    ~value:"v" (function
    | None -> Alcotest.fail "prepare must succeed"
    | Some (op, members) ->
      (* Kill one member before the commit round. *)
      Network.crash net (List.hd members);
      Quorum_rpc.commit_staged rpc ~op ~members (fun ok -> outcome := Some ok));
  Engine.run engine;
  Alcotest.(check bool) "commit reported incomplete" true (!outcome = Some false)

let test_set_protocol_validation () =
  let _, _, _, coord, rpc = build () in
  let other = Arbitrary.Quorums.protocol (Arbitrary.Tree.of_spec "1-2-3") in
  Alcotest.check_raises "coordinator rejects size change"
    (Invalid_argument "Coordinator.set_protocol: replica universe changed")
    (fun () -> Coordinator.set_protocol coord other);
  Alcotest.check_raises "rpc rejects size change"
    (Invalid_argument "Quorum_rpc.set_protocol: replica universe changed")
    (fun () -> Quorum_rpc.set_protocol rpc other)

let suite =
  [
    Alcotest.test_case "single-replica system" `Quick test_single_replica_system;
    Alcotest.test_case "write survives message loss" `Quick
      test_write_survives_message_loss;
    Alcotest.test_case "op succeeds after partition heals" `Quick
      test_op_succeeds_after_partition_heals;
    Alcotest.test_case "latency stats recorded" `Quick test_latency_stats_recorded;
    Alcotest.test_case "concurrent ops on different keys" `Quick
      test_concurrent_ops_different_keys;
    Alcotest.test_case "re-issue storm cannot refill budget" `Quick
      test_reissue_storm_cannot_refill_budget;
    Alcotest.test_case "rpc retry flag skips deposit" `Quick
      test_rpc_retry_flag_skips_deposit;
    Alcotest.test_case "rpc query without quorum" `Quick test_rpc_query_no_quorum;
    Alcotest.test_case "rpc forced-ts idempotence" `Quick
      test_rpc_forced_ts_idempotent;
    Alcotest.test_case "rpc commit incomplete on crash" `Quick
      test_rpc_commit_incomplete_on_crash;
    Alcotest.test_case "set_protocol validation" `Quick test_set_protocol_validation;
  ]
