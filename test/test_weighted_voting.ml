module Wv = Quorum.Weighted_voting
module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Availability = Quorum.Availability

let test_validation () =
  List.iter
    (fun (votes, r, w, why) ->
      Alcotest.(check bool) why true
        (try
           ignore (Wv.create ~votes ~r ~w);
           false
         with Invalid_argument _ -> true))
    [
      ([||], 1, 1, "no replicas");
      ([| 1; -1 |], 1, 1, "negative votes");
      ([| 0; 0 |], 1, 1, "zero total");
      ([| 1; 1; 1 |], 1, 2, "r + w <= total");
      ([| 1; 1; 1; 1 |], 3, 2, "2w <= total");
    ]

let test_corner_cases_match_classics () =
  (* r=1, w=n is ROWA; r=w=majority is Majority. *)
  let rowa = Wv.rowa ~n:5 in
  Alcotest.(check int) "rowa min read size" 1 (Wv.min_read_quorum_size rowa);
  Alcotest.(check int) "rowa min write size" 5 (Wv.min_write_quorum_size rowa);
  let maj = Wv.majority ~n:5 in
  Alcotest.(check int) "majority read size" 3 (Wv.min_read_quorum_size maj);
  Alcotest.(check int) "majority write size" 3 (Wv.min_write_quorum_size maj)

let test_weighted_assembly () =
  (* Votes 3,1,1,1 with total 6, r=2, w=5: the heavy replica alone reads;
     writes need the heavy replica plus two others. *)
  let t = Wv.create ~votes:[| 3; 1; 1; 1 |] ~r:2 ~w:5 in
  let rng = Rng.create 3 in
  let heavy_only = Bitset.of_list 4 [ 0 ] in
  (match Wv.read_quorum t ~alive:heavy_only ~rng with
  | Some q -> Alcotest.(check (list int)) "heavy reads alone" [ 0 ] (Bitset.elements q)
  | None -> Alcotest.fail "heavy replica gathers r votes");
  Alcotest.(check bool) "heavy alone cannot write" true
    (Wv.write_quorum t ~alive:heavy_only ~rng = None);
  let without_heavy = Bitset.of_list 4 [ 1; 2; 3 ] in
  (* 3 votes < w = 5. *)
  Alcotest.(check bool) "light replicas cannot write" true
    (Wv.write_quorum t ~alive:without_heavy ~rng = None);
  (* But 3 votes >= r = 2: reads fine. *)
  Alcotest.(check bool) "light replicas can read" true
    (Wv.read_quorum t ~alive:without_heavy ~rng <> None)

let test_bicoterie () =
  let t = Wv.create ~votes:[| 3; 2; 1; 1 |] ~r:3 ~w:5 in
  let reads =
    Quorum.Quorum_set.create ~universe:4 (List.of_seq (Wv.enumerate_read_quorums t))
  in
  let writes =
    Quorum.Quorum_set.create ~universe:4 (List.of_seq (Wv.enumerate_write_quorums t))
  in
  Alcotest.(check bool) "bicoterie" true
    (Quorum.Quorum_set.is_bicoterie ~read:reads ~write:writes);
  Alcotest.(check bool) "writes are a quorum system" true
    (Quorum.Quorum_set.is_quorum_system writes)

let test_enumeration_minimal () =
  let t = Wv.uniform ~n:4 ~r:2 ~w:3 in
  let reads = List.of_seq (Wv.enumerate_read_quorums t) in
  (* Minimal 2-vote sets among 4 uniform voters: C(4,2) = 6. *)
  Alcotest.(check int) "C(4,2)" 6 (List.length reads);
  List.iter
    (fun q -> Alcotest.(check int) "size 2" 2 (Bitset.cardinal q))
    reads

let test_availability_matches_exact () =
  let t = Wv.create ~votes:[| 2; 1; 1; 1 |] ~r:2 ~w:4 in
  let proto = Wv.protocol t in
  let rng = Rng.create 7 in
  let p = 0.7 in
  let mc = Availability.monte_carlo ~trials:20_000 ~rng ~n:4 ~p (fun ~alive ->
      Quorum.Protocol.read_quorum proto ~alive ~rng <> None)
  in
  let exact =
    Availability.exact ~n:4 ~p (fun ~alive ->
        Quorum.Protocol.read_quorum proto ~alive ~rng <> None)
  in
  Alcotest.(check bool) "MC matches exact" true (abs_float (mc -. exact) < 0.01)

let prop_intersection =
  QCheck.Test.make ~name:"weighted voting: reads intersect writes" ~count:60
    QCheck.(
      pair (list_of_size (Gen.int_range 2 5) (int_range 0 3)) (int_bound 100))
    (fun (votes_list, salt) ->
      let votes = Array.of_list votes_list in
      let total = Array.fold_left ( + ) 0 votes in
      QCheck.assume (total > 0);
      let w = (total / 2) + 1 + (salt mod (max 1 (total - (total / 2)))) in
      let w = min w total in
      let r = total - w + 1 in
      let t = Wv.create ~votes ~r ~w in
      let reads = List.of_seq (Wv.enumerate_read_quorums t) in
      let writes = List.of_seq (Wv.enumerate_write_quorums t) in
      List.for_all
        (fun rq -> List.for_all (fun wq -> Bitset.intersects rq wq) writes)
        reads)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "corner cases: ROWA and Majority" `Quick
      test_corner_cases_match_classics;
    Alcotest.test_case "weighted assembly" `Quick test_weighted_assembly;
    Alcotest.test_case "bicoterie" `Quick test_bicoterie;
    Alcotest.test_case "minimal enumeration" `Quick test_enumeration_minimal;
    Alcotest.test_case "availability MC vs exact" `Quick
      test_availability_matches_exact;
    QCheck_alcotest.to_alcotest prop_intersection;
  ]
