module Engine = Dsim.Engine
module Lock_manager = Replication.Lock_manager

let setup () =
  let engine = Engine.create () in
  (engine, Lock_manager.create ~engine)

let test_immediate_grant () =
  let engine, lm = setup () in
  let granted = ref false in
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Exclusive ~owner:100
    (fun () -> granted := true);
  Engine.run engine;
  Alcotest.(check bool) "granted" true !granted;
  Alcotest.(check bool) "held" true
    (Lock_manager.holders lm ~key:1 = Some (Lock_manager.Exclusive, [ 100 ]))

let test_shared_coexist () =
  let engine, lm = setup () in
  let count = ref 0 in
  List.iter
    (fun owner ->
      Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Shared ~owner (fun () ->
          incr count))
    [ 1; 2; 3 ];
  Engine.run engine;
  Alcotest.(check int) "all three hold" 3 !count

let test_exclusive_waits () =
  let engine, lm = setup () in
  let order = ref [] in
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Shared ~owner:1 (fun () ->
      order := "s" :: !order);
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Exclusive ~owner:2 (fun () ->
      order := "x" :: !order);
  Engine.run engine;
  Alcotest.(check (list string)) "writer waits" [ "s" ] (List.rev !order);
  Alcotest.(check int) "one waiting" 1 (Lock_manager.waiting lm ~key:1);
  Lock_manager.release lm ~key:1 ~owner:1;
  Engine.run engine;
  Alcotest.(check (list string)) "writer granted after release" [ "s"; "x" ]
    (List.rev !order)

let test_fifo_no_starvation () =
  (* shared(1) held; exclusive(2) queued; shared(3) must queue behind the
     writer, not jump ahead. *)
  let engine, lm = setup () in
  let order = ref [] in
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Shared ~owner:1 (fun () ->
      order := 1 :: !order);
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Exclusive ~owner:2 (fun () ->
      order := 2 :: !order);
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Shared ~owner:3 (fun () ->
      order := 3 :: !order);
  Engine.run engine;
  Lock_manager.release lm ~key:1 ~owner:1;
  Engine.run engine;
  Alcotest.(check (list int)) "writer before late reader" [ 1; 2 ] (List.rev !order);
  Lock_manager.release lm ~key:1 ~owner:2;
  Engine.run engine;
  Alcotest.(check (list int)) "reader last" [ 1; 2; 3 ] (List.rev !order)

let test_shared_batch_grant () =
  let engine, lm = setup () in
  let order = ref [] in
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Exclusive ~owner:1 (fun () ->
      order := "x" :: !order);
  List.iter
    (fun owner ->
      Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Shared ~owner (fun () ->
          order := "s" :: !order))
    [ 2; 3 ];
  Engine.run engine;
  Lock_manager.release lm ~key:1 ~owner:1;
  Engine.run engine;
  Alcotest.(check (list string)) "both readers granted together" [ "x"; "s"; "s" ]
    (List.rev !order)

let test_independent_keys () =
  let engine, lm = setup () in
  let count = ref 0 in
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Exclusive ~owner:1 (fun () ->
      incr count);
  Lock_manager.acquire lm ~key:2 ~mode:Lock_manager.Exclusive ~owner:2 (fun () ->
      incr count);
  Engine.run engine;
  Alcotest.(check int) "no interference" 2 !count

let test_release_validation () =
  let engine, lm = setup () in
  Alcotest.check_raises "release unlocked key"
    (Invalid_argument "Lock_manager.release: key not locked") (fun () ->
      Lock_manager.release lm ~key:9 ~owner:1);
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Shared ~owner:1 (fun () -> ());
  Engine.run engine;
  Alcotest.check_raises "release by non-holder"
    (Invalid_argument "Lock_manager.release: lock not held by owner") (fun () ->
      Lock_manager.release lm ~key:1 ~owner:2)

let test_double_acquire_rejected () =
  let engine, lm = setup () in
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Shared ~owner:1 (fun () -> ());
  Engine.run engine;
  Alcotest.check_raises "reentrant acquire"
    (Invalid_argument "Lock_manager.acquire: owner already holds or waits")
    (fun () ->
      Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Shared ~owner:1 (fun () ->
          ()))

let test_cleanup_after_release () =
  let engine, lm = setup () in
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Exclusive ~owner:1 (fun () -> ());
  Engine.run engine;
  Lock_manager.release lm ~key:1 ~owner:1;
  Alcotest.(check bool) "no holders" true (Lock_manager.holders lm ~key:1 = None);
  (* Key can be re-acquired fresh. *)
  let again = ref false in
  Lock_manager.acquire lm ~key:1 ~mode:Lock_manager.Exclusive ~owner:2 (fun () ->
      again := true);
  Engine.run engine;
  Alcotest.(check bool) "re-acquired" true !again

let suite =
  [
    Alcotest.test_case "immediate grant" `Quick test_immediate_grant;
    Alcotest.test_case "shared locks coexist" `Quick test_shared_coexist;
    Alcotest.test_case "exclusive waits for shared" `Quick test_exclusive_waits;
    Alcotest.test_case "FIFO prevents writer starvation" `Quick
      test_fifo_no_starvation;
    Alcotest.test_case "shared batch grant" `Quick test_shared_batch_grant;
    Alcotest.test_case "independent keys" `Quick test_independent_keys;
    Alcotest.test_case "release validation" `Quick test_release_validation;
    Alcotest.test_case "double acquire rejected" `Quick test_double_acquire_rejected;
    Alcotest.test_case "cleanup after release" `Quick test_cleanup_after_release;
  ]
