module Config = Arbitrary.Config
module Config_metrics = Eval.Config_metrics
module Figures = Eval.Figures
module Tablefmt = Eval.Tablefmt

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_feasible_n () =
  Alcotest.(check int) "binary snaps" 63 (Config_metrics.feasible_n Config.Binary 100);
  Alcotest.(check int) "hqc snaps" 81 (Config_metrics.feasible_n Config.Hqc 100);
  Alcotest.(check int) "mostly-write odd" 99
    (Config_metrics.feasible_n Config.Mostly_write 100);
  Alcotest.(check int) "arbitrary exact" 100
    (Config_metrics.feasible_n Config.Arbitrary 100)

let test_compute_consistency () =
  (* Config_metrics must agree with the underlying analytic modules. *)
  let m = Config_metrics.compute Config.Arbitrary ~n:100 ~p:0.7 in
  let tree = Config.build Config.Arbitrary ~n:100 in
  Alcotest.(check (float 1e-9)) "read load" (Arbitrary.Analysis.read_load tree)
    m.Config_metrics.rd_load;
  Alcotest.(check (float 1e-9)) "write availability"
    (Arbitrary.Analysis.write_availability tree ~p:0.7)
    m.Config_metrics.wr_avail

let test_binary_formula_at_feasible_points () =
  (* At n = 2^(h+1)-1 the continuous curve equals the paper formula. *)
  List.iter
    (fun h ->
      let n = (1 lsl (h + 1)) - 1 in
      let m = Config_metrics.compute Config.Binary ~n ~p:0.7 in
      let tq = Quorum.Tree_quorum.create ~height:h in
      Alcotest.(check (float 1e-6)) "cost matches"
        (Quorum.Tree_quorum.paper_cost tq)
        m.Config_metrics.rd_cost;
      Alcotest.(check (float 1e-9)) "load matches"
        (Quorum.Tree_quorum.optimal_load tq)
        m.Config_metrics.wr_load)
    [ 2; 3; 4; 5 ]

let test_protocols_executable () =
  List.iter
    (fun name ->
      let proto = Config_metrics.protocol_of name ~n:33 in
      let rng = Dsutil.Rng.create 3 in
      let alive = Quorum.Protocol.all_alive proto in
      Alcotest.(check bool)
        (Config.name_to_string name ^ " assembles read quorum")
        true
        (Quorum.Protocol.read_quorum proto ~alive ~rng <> None);
      Alcotest.(check bool)
        (Config.name_to_string name ^ " assembles write quorum")
        true
        (Quorum.Protocol.write_quorum proto ~alive ~rng <> None))
    Config.all_names

let test_figures_render () =
  let sizes = [ 9; 17 ] in
  List.iter
    (fun (tag, s) ->
      Alcotest.(check bool) (tag ^ " non-empty") true (String.length s > 100);
      Alcotest.(check bool) (tag ^ " mentions ARBITRARY") true
        (contains ~needle:"ARBITRARY" s))
    [
      ("fig2", Figures.fig2 ~sizes ());
      ("fig3", Figures.fig3 ~sizes ());
      ("fig4", Figures.fig4 ~sizes ());
    ]

let test_table1_has_paper_numbers () =
  let s = Figures.table1 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table1 has " ^ needle) true (contains ~needle s))
    [ "m(R)=15"; "RD_cost=2"; "0.97"; "0.45" ]

let test_shape_checks_all_ok () =
  let s = Figures.shape_checks () in
  Alcotest.(check bool) "no FAIL lines" false (contains ~needle:"[FAIL]" s);
  Alcotest.(check bool) "has OK lines" true (contains ~needle:"[OK ]" s)

let test_tablefmt_alignment () =
  let s =
    Tablefmt.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* All lines padded to the same prefix width for the first column. *)
  Alcotest.(check bool) "rule present" true (contains ~needle:"---" s)

let test_limits_table () =
  let s = Figures.limits () in
  Alcotest.(check bool) "has p column" true (contains ~needle:"0.85" s)

let test_csv_export () =
  let s = Eval.Export.csv ~sizes:[ 9; 17 ] Eval.Export.Fig2_read in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "header" true
    (contains ~needle:"n,BINARY,UNMODIFIED,ARBITRARY" s);
  (* MOSTLY-READ read cost is 1 at any size. *)
  Alcotest.(check bool) "row has values" true (contains ~needle:"9," s)

let test_csv_matches_metrics () =
  let s = Eval.Export.csv ~sizes:[ 65 ] ~p:0.7 Eval.Export.Fig4_load in
  let m = Config_metrics.compute Config.Arbitrary ~n:65 ~p:0.7 in
  Alcotest.(check bool) "arbitrary write load in CSV" true
    (contains ~needle:(Printf.sprintf "%.6f" m.Config_metrics.wr_load) s)

let test_gnuplot_script () =
  let s = Eval.Export.gnuplot_script () in
  List.iter
    (fun fig ->
      Alcotest.(check bool)
        (Eval.Export.figure_name fig ^ " referenced")
        true
        (contains ~needle:(Eval.Export.figure_name fig) s))
    Eval.Export.all_figures

let test_write_all () =
  let dir = Filename.temp_file "repro" "" in
  Sys.remove dir;
  let files = Eval.Export.write_all ~sizes:[ 9 ] ~dir () in
  Alcotest.(check int) "6 CSVs + plot.gp" 7 (List.length files);
  List.iter
    (fun f -> Alcotest.(check bool) (f ^ " exists") true (Sys.file_exists f))
    files

let test_tree_dot () =
  let dot = Arbitrary.Tree_dot.to_dot (Arbitrary.Tree.figure1 ()) in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph" dot);
  (* 8 physical nodes -> 8 filled boxes; 4 logical circles + root. *)
  Alcotest.(check bool) "site labels present" true (contains ~needle:"s7" dot);
  Alcotest.(check bool) "logical nodes hollow" true
    (contains ~needle:"shape=circle" dot);
  (* Every non-root node has an edge. Figure 1: 3 + 9 = 12 edges. *)
  let count needle s =
    let nl = String.length needle and sl = String.length s in
    let rec go i acc =
      if i + nl > sl then acc
      else go (i + 1) (if String.sub s i nl = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "12 edges" 12 (count " -> " dot)

let test_simulate_measure_smoke () =
  (* Tiny run: measured cost must land near analytic for the arbitrary
     configuration. *)
  let r = Eval.Simulate.measure Config.Arbitrary ~n:9 ~ops:60 ~seed:5 in
  Alcotest.(check bool) "read cost close" true
    (abs_float (r.Eval.Simulate.measured_rd_cost -. r.Eval.Simulate.analytic_rd_cost)
    < 0.5);
  Alcotest.(check bool) "write cost close" true
    (abs_float (r.Eval.Simulate.measured_wr_cost -. r.Eval.Simulate.analytic_wr_cost)
    < 0.8)

let test_failure_injection_run_smoke () =
  let r =
    Eval.Simulate.failure_injection_run Config.Arbitrary ~n:9 ~p:0.9 ~ops:6
      ~seed:3
  in
  Alcotest.(check int) "six ops attempted" 6
    (r.Replication.Harness.reads_ok + r.Replication.Harness.reads_failed
    + r.Replication.Harness.writes_ok + r.Replication.Harness.writes_failed)

let test_tables_render_small () =
  List.iter
    (fun (tag, s) ->
      Alcotest.(check bool) (tag ^ " renders") true (String.length s > 80))
    [
      ("cost_load", Eval.Simulate.cost_load_table ~n:9 ~ops:40 ());
      ("cost_sweep", Eval.Simulate.cost_sweep ~sizes:[ 9 ] ~ops:40 ());
      ("latency", Eval.Simulate.latency_table ~n:9 ~ops:40 ());
      ("availability", Eval.Simulate.availability_table ~n:9 ~trials:300 ());
      ( "failure-availability",
        Eval.Simulate.failure_availability_table ~n:9 ~patterns:5 () );
      ("related", Figures.related_work ~n:16 ());
    ]

let suite =
  [
    Alcotest.test_case "feasible_n" `Quick test_feasible_n;
    Alcotest.test_case "compute consistency" `Quick test_compute_consistency;
    Alcotest.test_case "binary curve at feasible points" `Quick
      test_binary_formula_at_feasible_points;
    Alcotest.test_case "all protocols executable" `Quick test_protocols_executable;
    Alcotest.test_case "figures render" `Quick test_figures_render;
    Alcotest.test_case "table 1 has paper numbers" `Quick
      test_table1_has_paper_numbers;
    Alcotest.test_case "shape checks all OK" `Quick test_shape_checks_all_ok;
    Alcotest.test_case "tablefmt alignment" `Quick test_tablefmt_alignment;
    Alcotest.test_case "limits table" `Quick test_limits_table;
    Alcotest.test_case "csv export" `Quick test_csv_export;
    Alcotest.test_case "csv matches metrics" `Quick test_csv_matches_metrics;
    Alcotest.test_case "gnuplot script" `Quick test_gnuplot_script;
    Alcotest.test_case "write_all" `Quick test_write_all;
    Alcotest.test_case "tree DOT export" `Quick test_tree_dot;
    Alcotest.test_case "simulate.measure smoke" `Quick test_simulate_measure_smoke;
    Alcotest.test_case "failure injection smoke" `Quick
      test_failure_injection_run_smoke;
    Alcotest.test_case "all measured tables render" `Slow test_tables_render_small;
  ]
