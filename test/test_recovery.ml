(* Crash-recovery integration tests: amnesia crashes, WAL replay, the
   rejoin state machine, incarnation fencing, and the end-to-end gates
   (amnesia + durable WAL + catch-up is consistent; the negative control
   is observably not). *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Coordinator = Replication.Coordinator
module Replica = Replication.Replica
module Message = Replication.Message
module Harness = Replication.Harness
module Timestamp = Replication.Timestamp
module Store = Replication.Store
module Wal = Replication.Wal
module Protocol = Quorum.Protocol
module Chaos = Eval.Chaos
module Consistency = Eval.Consistency

let fig1_proto () = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ())

type ctx = {
  engine : Engine.t;
  net : Message.t Network.t;
  replicas : Replica.t array;
  coord : Coordinator.t;
}

let setup ?(seed = 42) ?(wal_policy = Wal.Sync_on_commit) ?(catch_up = true)
    ?keys () =
  let proto = fig1_proto () in
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n:(n + 1) () in
  Network.set_crash_mode net Network.Amnesia;
  let recovery = Replica.recovery ~wal_policy ~catch_up ?keys ~proto () in
  let replicas =
    Array.init n (fun site -> Replica.create ~site ~net ~recovery ())
  in
  let coord = Coordinator.create ~site:n ~net ~proto () in
  { engine; net; replicas; coord }

let do_write ctx key value =
  let result = ref `Pending in
  Coordinator.write ctx.coord ~key ~value (fun r -> result := `Done r);
  Engine.run ctx.engine;
  match !result with
  | `Done r -> r
  | `Pending -> Alcotest.fail "write did not complete"

let do_read ctx key =
  let result = ref `Pending in
  Coordinator.read ctx.coord ~key (fun r -> result := `Done r);
  Engine.run ctx.engine;
  match !result with
  | `Done r -> r
  | `Pending -> Alcotest.fail "read did not complete"

(* An amnesia crash wipes the store; WAL replay (Sync_on_commit) restores
   every committed write, and the rejoin bumps the incarnation exactly
   once per crash. *)
let test_amnesia_replay_restores_commits () =
  (* Catch-up off so the restoration is attributable to WAL replay alone. *)
  let ctx = setup ~catch_up:false () in
  (match do_write ctx 1 "hello" with
  | Some _ -> ()
  | None -> Alcotest.fail "write must succeed failure-free");
  (* Crash a replica the write quorum actually installed on. *)
  let site =
    let holds i =
      snd (Store.read (Replica.store ctx.replicas.(i)) ~key:1) = "hello"
    in
    let rec find i = if holds i then i else find (i + 1) in
    find 0
  in
  let r = ctx.replicas.(site) in
  Network.crash ctx.net site;
  Alcotest.(check bool) "wiped on crash" true
    (Store.read (Replica.store r) ~key:1 = (Timestamp.zero, ""));
  Network.recover ctx.net site;
  Engine.run ctx.engine;
  Alcotest.(check int) "incarnation bumped once" 1 (Replica.incarnation r);
  Alcotest.(check bool) "serving again" true (Replica.is_serving r);
  Alcotest.(check bool) "replayed records" true
    (Replica.wal_records_replayed r > 0);
  let ts, value = Store.read (Replica.store r) ~key:1 in
  Alcotest.(check string) "committed write restored" "hello" value;
  Alcotest.(check int) "at its version" 1 ts.Timestamp.version

(* Under Fail_stop the paper's model holds: memory survives, so the hooks
   must not wipe anything, bump incarnations, or replay. *)
let test_fail_stop_keeps_memory () =
  let ctx = setup () in
  Network.set_crash_mode ctx.net Network.Fail_stop;
  (match do_write ctx 1 "hello" with
  | Some _ -> ()
  | None -> Alcotest.fail "write must succeed failure-free");
  let site =
    let holds i =
      snd (Store.read (Replica.store ctx.replicas.(i)) ~key:1) = "hello"
    in
    let rec find i = if holds i then i else find (i + 1) in
    find 0
  in
  Network.crash ctx.net site;
  Network.recover ctx.net site;
  Engine.run ctx.engine;
  let r = ctx.replicas.(site) in
  Alcotest.(check int) "incarnation unchanged" 0 (Replica.incarnation r);
  Alcotest.(check bool) "still serving" true (Replica.is_serving r);
  Alcotest.(check int) "no replay" 0 (Replica.wal_records_replayed r);
  Alcotest.(check bool) "memory survived" true
    (snd (Store.read (Replica.store r) ~key:1) = "hello")

(* Catch-up freshens keys whose WAL records were lost: stage-only state is
   volatile under Sync_on_commit, but the peers still hold the committed
   write, so the rejoiner quorum-reads it back.  [keys] passes the full
   key space since the replayed store cannot name what it lost. *)
let test_catchup_freshens_lost_keys () =
  let ctx = setup ~keys:(fun () -> [ 1 ]) () in
  (match do_write ctx 1 "hello" with
  | Some _ -> ()
  | None -> Alcotest.fail "write must succeed failure-free");
  (* Whether or not site 3 was in the write quorum, after crash + recover
     it must end up holding the committed write: replay restores it if it
     was, and the quorum catch-up read fetches it from the peers if it
     was not (read and write quorums intersect). *)
  let r = ctx.replicas.(3) in
  Network.crash ctx.net 3;
  Network.recover ctx.net 3;
  Engine.run ctx.engine;
  Alcotest.(check bool) "caught up" true (Replica.is_serving r);
  Alcotest.(check int) "one catch-up run" 1 (Replica.catchup_runs r);
  Alcotest.(check bool) "key restored" true
    (snd (Store.read (Replica.store r) ~key:1) = "hello")

(* With every peer down, catch-up cannot assemble a quorum; after the
   attempt budget the replica stays safely in the recovering state. *)
let test_catchup_abandons_without_peers () =
  let ctx = setup ~keys:(fun () -> [ 1 ]) () in
  let n = Array.length ctx.replicas in
  for i = 1 to n - 1 do
    Network.crash ctx.net i
  done;
  Network.crash ctx.net 0;
  Network.recover ctx.net 0;
  Engine.run ctx.engine;
  let r = ctx.replicas.(0) in
  Alcotest.(check bool) "not serving" false (Replica.is_serving r);
  Alcotest.(check int) "abandoned" 1 (Replica.catchup_abandoned r)

(* Incarnation fencing: a Commit stamped with a pre-crash incarnation must
   be nacked, never applied — the staged write it refers to died with the
   old incarnation. *)
let test_stale_commit_nacked () =
  let ctx = setup () in
  let n = Array.length ctx.replicas in
  let r = ctx.replicas.(0) in
  Network.crash ctx.net 0;
  Network.recover ctx.net 0;
  Engine.run ctx.engine;
  Alcotest.(check int) "rejoined at incarnation 1" 1 (Replica.incarnation r);
  let nacks = ref [] in
  Network.set_handler ctx.net ~site:n (fun ~src:_ msg -> nacks := msg :: !nacks);
  Network.send ctx.net ~src:n ~dst:0 (Message.Commit { op = 99; inc = 0 });
  Engine.run ctx.engine;
  Alcotest.(check int) "nack counter" 1 (Replica.stale_commits_nacked r);
  match !nacks with
  | [ Message.Prepare_nack { op = 99; reason } ] ->
    Alcotest.(check string) "reason" "stale-incarnation" reason
  | _ -> Alcotest.fail "expected exactly one stale-incarnation nack"

(* Replies are stamped with the sender's incarnation so coordinators can
   fence replies that predate a crash. *)
let test_replies_carry_incarnation () =
  let ctx = setup () in
  let n = Array.length ctx.replicas in
  Network.crash ctx.net 0;
  Network.recover ctx.net 0;
  Engine.run ctx.engine;
  let replies = ref [] in
  Network.set_handler ctx.net ~site:n (fun ~src:_ msg ->
      replies := msg :: !replies);
  Network.send ctx.net ~src:n ~dst:0 (Message.Read_request { op = 7; key = 1 });
  Engine.run ctx.engine;
  match !replies with
  | [ (Message.Read_reply _ as m) ] ->
    Alcotest.(check (option int)) "stamped with incarnation 1" (Some 1)
      (Message.incarnation m)
  | _ -> Alcotest.fail "expected exactly one read reply"

(* --- end-to-end gates (campaign-sized, deterministic) ------------------- *)

let arbitrary_only = [ Arbitrary.Config.Arbitrary ]

let test_amnesia_campaign_consistent () =
  let cells =
    Chaos.run_amnesia ~n:9 ~clients:2 ~ops:10 ~seed:7 ~horizon:3000.0
      ~configs:arbitrary_only ()
  in
  Alcotest.(check int) "one cell" 1 (List.length cells);
  let c = List.hd cells in
  let r = c.Chaos.a_report in
  Alcotest.(check int) "no online violations" 0 r.Harness.safety_violations;
  Alcotest.(check bool) "no offline violations" true
    (Consistency.ok c.Chaos.a_consistency);
  Alcotest.(check bool) "made progress" true
    (r.Harness.reads_ok + r.Harness.writes_ok > 0);
  Alcotest.(check bool) "replicas actually rejoined" true
    (Array.exists (fun i -> i > 0) r.Harness.replica_incarnations);
  Alcotest.(check bool) "catch-ups completed" true
    (r.Harness.catchup_runs > 0);
  Alcotest.(check bool) "WAL replay happened" true
    (r.Harness.wal_records_replayed > 0);
  (* Liveness: once the churn stops, every replica works its way back to
     serving — recovering replicas answering each other's catch-up reads
     is what breaks the mutual-standoff deadlock. *)
  Alcotest.(check int) "nobody stuck recovering" 0
    r.Harness.replicas_recovering

let test_negative_control_detects () =
  let cells =
    Chaos.run_amnesia_negative ~n:9 ~clients:2 ~ops:25 ~seed:7
      ~horizon:3000.0 ~configs:arbitrary_only ()
  in
  let violations = Chaos.amnesia_violations cells in
  Alcotest.(check bool) "async WAL + no catch-up loses writes" true
    (violations >= 1);
  let c = List.hd cells in
  List.iter
    (fun v ->
      Alcotest.(check bool) "violation names distinct ops" true
        (v.Consistency.read_id <> v.Consistency.write_id))
    c.Chaos.a_consistency.Consistency.violations

(* Collecting spans for the checker must not perturb the simulation: the
   memory sink draws no randomness and schedules no events. *)
let test_checker_attachment_inert () =
  let proto = fig1_proto () in
  let s = Harness.default_scenario ~proto in
  let scenario =
    { s with Harness.n_clients = 2; ops_per_client = 15; seed = 11 }
  in
  let plain = Harness.run scenario in
  let checked =
    Harness.run { scenario with Harness.check_consistency = true }
  in
  Alcotest.(check int) "same reads" plain.Harness.reads_ok
    checked.Harness.reads_ok;
  Alcotest.(check int) "same writes" plain.Harness.writes_ok
    checked.Harness.writes_ok;
  Alcotest.(check int) "same messages" plain.Harness.messages_sent
    checked.Harness.messages_sent;
  Alcotest.(check bool) "spans only when asked" true
    (plain.Harness.spans = [] && checked.Harness.spans <> []);
  let report = Consistency.check checked.Harness.spans in
  Alcotest.(check bool) "failure-free run is consistent" true
    (Consistency.ok report);
  Alcotest.(check int) "every span stamped" 0 report.Consistency.unstamped

let suite =
  [
    Alcotest.test_case "amnesia replay restores commits" `Quick
      test_amnesia_replay_restores_commits;
    Alcotest.test_case "fail-stop keeps memory" `Quick
      test_fail_stop_keeps_memory;
    Alcotest.test_case "catch-up freshens lost keys" `Quick
      test_catchup_freshens_lost_keys;
    Alcotest.test_case "catch-up abandons without peers" `Quick
      test_catchup_abandons_without_peers;
    Alcotest.test_case "stale commits nacked" `Quick test_stale_commit_nacked;
    Alcotest.test_case "replies carry incarnation" `Quick
      test_replies_carry_incarnation;
    Alcotest.test_case "amnesia campaign is consistent" `Quick
      test_amnesia_campaign_consistent;
    Alcotest.test_case "negative control detects lost writes" `Quick
      test_negative_control_detects;
    Alcotest.test_case "checker attachment is inert" `Quick
      test_checker_attachment_inert;
  ]
