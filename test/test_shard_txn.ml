(* Cross-shard transactions: the 2PC all-prepared barrier must keep the
   increment-conservation invariant through per-shard crash schedules,
   and the non-atomic negative control must observably break it. *)

module Shard_txn_harness = Replication.Shard_txn_harness
module Shard_map = Arbitrary.Shard_map
module Consistency = Eval.Consistency
module Failure = Dsim.Failure

let proto () = Arbitrary.Quorums.protocol (Arbitrary.Tree.of_spec "1-3-5")

let n_sites = 9

let blackout ~shard ~from_ ~until =
  ( shard,
    List.init n_sites (fun s -> { Failure.time = from_; event = Failure.Crash s })
    @ List.init n_sites (fun s ->
          { Failure.time = until; event = Failure.Recover s }) )

let scenario ?(atomic = true) ?(seed = 42) ?(failures = []) ?(loss = []) () =
  {
    (Shard_txn_harness.default_scenario ~proto:(proto ()) ~shards:4) with
    atomic;
    seed;
    shard_failures = failures;
    shard_loss = loss;
    txns_per_client = 25;
  }

let test_healthy_commits_and_conserves () =
  let r = Shard_txn_harness.run (scenario ()) in
  (* Contention aborts are legitimate (shared-lock upgrade conflicts at
     commit), so not every transaction commits — but every one resolves,
     most commit, and conservation holds exactly. *)
  Alcotest.(check int) "every transaction resolves" (3 * 25)
    (r.Shard_txn_harness.committed + r.Shard_txn_harness.aborted);
  Alcotest.(check bool) "most transactions commit" true
    (r.Shard_txn_harness.committed > r.Shard_txn_harness.aborted);
  Alcotest.(check bool) "conservation holds" true
    r.Shard_txn_harness.conservation_ok;
  Alcotest.(check bool) "workload actually spans shards" true
    (r.Shard_txn_harness.cross_shard_txns > 0);
  Alcotest.(check int) "no partial commits under 2PC" 0
    r.Shard_txn_harness.partial_commits;
  let c = Consistency.check_conservation ~committed:r.committed_increments
      ~uncertain:r.uncertain_increments ~observed:r.observed_total in
  Alcotest.(check bool) "checker agrees" true (Consistency.conserved c)

let test_atomic_survives_shard_blackout () =
  (* One shard's replicas all crash mid-run: transactions touching it
     abort (or land in the in-doubt window), but nothing is partially
     applied, so conservation holds. *)
  let r =
    Shard_txn_harness.run
      (scenario ~failures:[ blackout ~shard:1 ~from_:30.0 ~until:400.0 ] ())
  in
  Alcotest.(check bool) "some transactions aborted" true
    (r.Shard_txn_harness.aborted > 0);
  Alcotest.(check int) "no partial commits under 2PC" 0
    r.Shard_txn_harness.partial_commits;
  Alcotest.(check bool) "conservation holds through the blackout" true
    r.Shard_txn_harness.conservation_ok;
  let c = Consistency.check_conservation ~committed:r.committed_increments
      ~uncertain:r.uncertain_increments ~observed:r.observed_total in
  Alcotest.(check bool) "checker agrees" true (Consistency.conserved c);
  Alcotest.(check int) "no phantoms" 0 c.Consistency.phantom_increments

let test_atomic_survives_lossy_shard () =
  (* One shard drops 30% of its messages: reads there sometimes succeed
     while prepare/commit legs fail, which is exactly the window where a
     broken barrier would apply transactions partially.  With 2PC intact
     the all-prepared barrier rolls the healthy legs back instead. *)
  let r = Shard_txn_harness.run (scenario ~loss:[ (1, 0.3) ] ()) in
  Alcotest.(check bool) "some transactions aborted" true
    (r.Shard_txn_harness.aborted > 0);
  Alcotest.(check int) "no partial commits under 2PC" 0
    r.Shard_txn_harness.partial_commits;
  Alcotest.(check bool) "conservation holds through the loss" true
    r.Shard_txn_harness.conservation_ok;
  let c = Consistency.check_conservation ~committed:r.committed_increments
      ~uncertain:r.uncertain_increments ~observed:r.observed_total in
  Alcotest.(check int) "no phantoms" 0 c.Consistency.phantom_increments

let test_nonatomic_negative_control () =
  (* Same lossy shard with the cross-shard barrier disabled: healthy
     shards' legs commit while the lossy shard's legs fail, so phantom
     increments appear and conservation is violated. *)
  let r = Shard_txn_harness.run (scenario ~atomic:false ~loss:[ (1, 0.3) ] ()) in
  Alcotest.(check bool) "partial commits happened" true
    (r.Shard_txn_harness.partial_commits > 0);
  Alcotest.(check bool) "conservation violated" false
    r.Shard_txn_harness.conservation_ok;
  let c = Consistency.check_conservation ~committed:r.committed_increments
      ~uncertain:r.uncertain_increments ~observed:r.observed_total in
  Alcotest.(check bool) "checker flags it" false (Consistency.conserved c);
  Alcotest.(check bool) "phantom increments detected" true
    (c.Consistency.phantom_increments > 0)

let test_nonatomic_healthy_is_silent () =
  (* The negative control only bites under failures: with every shard
     healthy, per-leg commits all succeed and conservation holds. *)
  let r = Shard_txn_harness.run (scenario ~atomic:false ()) in
  Alcotest.(check bool) "conservation holds" true
    r.Shard_txn_harness.conservation_ok;
  Alcotest.(check int) "no partial commits" 0 r.Shard_txn_harness.partial_commits

let test_deterministic () =
  let run () =
    let r =
      Shard_txn_harness.run
        (scenario ~seed:7 ~failures:[ blackout ~shard:2 ~from_:50.0 ~until:300.0 ] ())
    in
    ( r.Shard_txn_harness.committed,
      r.Shard_txn_harness.aborted,
      r.Shard_txn_harness.observed_total )
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "same seed, same outcome" a b

let suite =
  [
    Alcotest.test_case "healthy cross-shard txns conserve" `Quick
      test_healthy_commits_and_conserves;
    Alcotest.test_case "2PC atomic through shard blackout" `Quick
      test_atomic_survives_shard_blackout;
    Alcotest.test_case "2PC atomic through lossy shard" `Quick
      test_atomic_survives_lossy_shard;
    Alcotest.test_case "non-atomic negative control violates" `Quick
      test_nonatomic_negative_control;
    Alcotest.test_case "non-atomic silent when healthy" `Quick
      test_nonatomic_healthy_is_silent;
    Alcotest.test_case "seeded cross-shard runs deterministic" `Quick
      test_deterministic;
  ]
