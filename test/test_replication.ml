(* Integration tests: coordinator + replicas + simulated network. *)

module Engine = Dsim.Engine
module Network = Dsim.Network
module Failure = Dsim.Failure
module Coordinator = Replication.Coordinator
module Replica = Replication.Replica
module Harness = Replication.Harness
module Timestamp = Replication.Timestamp
module Protocol = Quorum.Protocol

let fig1_proto () = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ())

type ctx = {
  engine : Engine.t;
  net : Replication.Message.t Network.t;
  replicas : Replica.t array;
  coord : Coordinator.t;
}

let setup ?(proto = fig1_proto ()) ?(seed = 42) ?config () =
  let n = Protocol.universe_size proto in
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n:(n + 1) () in
  let replicas = Array.init n (fun site -> Replica.create ~site ~net ()) in
  let coord = Coordinator.create ~site:n ~net ~proto ?config () in
  { engine; net; replicas; coord }

let do_read ctx key =
  let result = ref `Pending in
  Coordinator.read ctx.coord ~key (fun r -> result := `Done r);
  Engine.run ctx.engine;
  match !result with
  | `Done r -> r
  | `Pending -> Alcotest.fail "read did not complete"

let do_write ctx key value =
  let result = ref `Pending in
  Coordinator.write ctx.coord ~key ~value (fun r -> result := `Done r);
  Engine.run ctx.engine;
  match !result with
  | `Done r -> r
  | `Pending -> Alcotest.fail "write did not complete"

let test_read_fresh () =
  let ctx = setup () in
  match do_read ctx 1 with
  | Some { Coordinator.value; ts; _ } ->
    Alcotest.(check string) "empty value" "" value;
    Alcotest.(check bool) "zero ts" true (Timestamp.equal ts Timestamp.zero)
  | None -> Alcotest.fail "read must succeed failure-free"

let test_write_then_read () =
  let ctx = setup () in
  (match do_write ctx 1 "hello" with
  | Some ts -> Alcotest.(check int) "version 1" 1 ts.Timestamp.version
  | None -> Alcotest.fail "write must succeed failure-free");
  match do_read ctx 1 with
  | Some { Coordinator.value; ts; _ } ->
    Alcotest.(check string) "reads the write" "hello" value;
    Alcotest.(check int) "version 1" 1 ts.Timestamp.version
  | None -> Alcotest.fail "read must succeed"

let test_versions_increment () =
  let ctx = setup () in
  ignore (do_write ctx 1 "v1");
  ignore (do_write ctx 1 "v2");
  (match do_write ctx 1 "v3" with
  | Some ts -> Alcotest.(check int) "version 3" 3 ts.Timestamp.version
  | None -> Alcotest.fail "write must succeed");
  match do_read ctx 1 with
  | Some { Coordinator.value; _ } -> Alcotest.(check string) "latest" "v3" value
  | None -> Alcotest.fail "read must succeed"

let test_keys_independent () =
  let ctx = setup () in
  ignore (do_write ctx 1 "one");
  ignore (do_write ctx 2 "two");
  (match do_read ctx 1 with
  | Some { Coordinator.value; _ } -> Alcotest.(check string) "key 1" "one" value
  | None -> Alcotest.fail "read 1 failed");
  match do_read ctx 2 with
  | Some { Coordinator.value; _ } -> Alcotest.(check string) "key 2" "two" value
  | None -> Alcotest.fail "read 2 failed"

let test_write_survives_levelwise_crash () =
  (* Crash one replica of level 2: writes go via level 1, reads still work. *)
  let ctx = setup () in
  Network.crash ctx.net 7;
  (match do_write ctx 1 "resilient" with
  | Some _ -> ()
  | None -> Alcotest.fail "write must route to the intact level");
  match do_read ctx 1 with
  | Some { Coordinator.value; _ } -> Alcotest.(check string) "value" "resilient" value
  | None -> Alcotest.fail "read must succeed"

let test_read_blocked_by_dead_level () =
  (* Level 1 = sites 0,1,2 all dead: no read quorum exists. *)
  let ctx = setup () in
  List.iter (Network.crash ctx.net) [ 0; 1; 2 ];
  (match do_read ctx 1 with
  | None -> ()
  | Some _ -> Alcotest.fail "read should fail without level 1");
  (* Writes still possible on level 2... but the version phase needs a read
     quorum, so the whole write operation must fail too. *)
  match do_write ctx 1 "nope" with
  | None -> ()
  | Some _ -> Alcotest.fail "write needs the version-phase read quorum"

let test_crash_recovery_mid_run () =
  let ctx = setup () in
  ignore (do_write ctx 1 "before");
  List.iter (Network.crash ctx.net) [ 0; 1; 2 ];
  (match do_read ctx 1 with None -> () | Some _ -> Alcotest.fail "blocked");
  List.iter (Network.recover ctx.net) [ 0; 1; 2 ];
  match do_read ctx 1 with
  | Some { Coordinator.value; _ } ->
    Alcotest.(check string) "value survives crash+recovery" "before" value
  | None -> Alcotest.fail "read after recovery must succeed"

let test_rowa_write_blocked_by_single_crash () =
  let proto = Quorum.Rowa.protocol (Quorum.Rowa.create ~n:4) in
  let ctx = setup ~proto () in
  Network.crash ctx.net 2;
  (match do_write ctx 1 "x" with
  | None -> ()
  | Some _ -> Alcotest.fail "ROWA write must block on any crash");
  match do_read ctx 1 with
  | Some _ -> ()
  | None -> Alcotest.fail "ROWA read survives"

let test_majority_partition () =
  let proto = Quorum.Majority.protocol (Quorum.Majority.create ~n:5) in
  let ctx = setup ~proto () in
  (* Coordinator (site 5) with replicas 0,1 vs majority side 2,3,4. *)
  Network.partition ctx.net [ [ 0; 1; 5 ]; [ 2; 3; 4 ] ];
  (match do_write ctx 1 "minority" with
  | None -> ()
  | Some _ -> Alcotest.fail "minority side cannot write");
  Network.heal ctx.net;
  match do_write ctx 1 "healed" with
  | Some _ -> ()
  | None -> Alcotest.fail "healed network must accept writes"

let test_metrics_counted () =
  let ctx = setup () in
  ignore (do_write ctx 1 "a");
  ignore (do_read ctx 1);
  (match do_read ctx 9 with _ -> ());
  let m = Coordinator.metrics ctx.coord in
  Alcotest.(check int) "writes ok" 1 m.Coordinator.writes_ok;
  Alcotest.(check int) "reads ok" 2 m.Coordinator.reads_ok;
  Alcotest.(check int) "no failures" 0
    (m.Coordinator.reads_failed + m.Coordinator.writes_failed)

let test_replica_counters () =
  let ctx = setup () in
  ignore (do_write ctx 1 "a");
  let applied =
    Array.fold_left (fun acc r -> acc + Replica.writes_applied r) 0 ctx.replicas
  in
  let prepares =
    Array.fold_left (fun acc r -> acc + Replica.prepares_seen r) 0 ctx.replicas
  in
  (* One write = prepares at one full level (3 or 5) and as many applies. *)
  Alcotest.(check bool) "prepares at a full level" true
    (prepares = 3 || prepares = 5);
  Alcotest.(check int) "applies = prepares" prepares applied

(* --- harness-level runs ------------------------------------------------- *)

let run_scenario ?(n_clients = 4) ?(ops = 60) ?(loss = 0.0) ?(failures = [])
    ?(seed = 7) proto =
  let s = Harness.default_scenario ~proto in
  Harness.run
    {
      s with
      Harness.n_clients;
      ops_per_client = ops;
      loss_rate = loss;
      failures;
      seed;
    }

let test_harness_happy_path () =
  let r = run_scenario (fig1_proto ()) in
  Alcotest.(check int) "no safety violations" 0 r.Harness.safety_violations;
  Alcotest.(check int) "no failures" 0 (r.Harness.reads_failed + r.Harness.writes_failed);
  Alcotest.(check int) "all ops completed" 240 (r.Harness.reads_ok + r.Harness.writes_ok)

let test_harness_determinism () =
  let r1 = run_scenario (fig1_proto ()) in
  let r2 = run_scenario (fig1_proto ()) in
  Alcotest.(check int) "same reads" r1.Harness.reads_ok r2.Harness.reads_ok;
  Alcotest.(check int) "same messages" r1.Harness.messages_sent r2.Harness.messages_sent;
  Alcotest.(check (float 1e-9)) "same duration" r1.Harness.duration r2.Harness.duration

let test_harness_message_loss () =
  let r = run_scenario ~loss:0.05 (fig1_proto ()) in
  Alcotest.(check int) "no safety violations" 0 r.Harness.safety_violations;
  Alcotest.(check bool) "some drops happened" true (r.Harness.messages_dropped > 0)

let safety_under_failures proto =
  let rng = Dsutil.Rng.create 101 in
  let failures =
    Failure.random_crash_recovery ~rng
      ~n:(Protocol.universe_size proto)
      ~horizon:400.0 ~mtbf:120.0 ~mttr:30.0
  in
  let r = run_scenario ~failures ~loss:0.02 proto in
  Alcotest.(check int)
    (Protocol.name proto ^ ": no safety violations under churn")
    0 r.Harness.safety_violations;
  Alcotest.(check bool)
    (Protocol.name proto ^ ": made progress")
    true
    (r.Harness.reads_ok + r.Harness.writes_ok > 0)

let test_safety_matrix () =
  List.iter safety_under_failures
    [
      fig1_proto ();
      Arbitrary.Quorums.protocol (Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:36);
      Quorum.Majority.protocol (Quorum.Majority.create ~n:7);
      Quorum.Tree_quorum.protocol (Quorum.Tree_quorum.create ~height:3);
      Quorum.Hqc.protocol (Quorum.Hqc.create ~depth:2);
      Quorum.Grid.protocol (Quorum.Grid.create ~rows:3 ~cols:3);
      Quorum.Maekawa.protocol (Quorum.Maekawa.create ~k:3);
      Quorum.Weighted_voting.protocol
        (Quorum.Weighted_voting.create ~votes:[| 3; 2; 2; 1; 1 |] ~r:5 ~w:5);
      Quorum.Tqp.protocol (Quorum.Tqp.create ~d:1 ~height:1);
    ]

let test_zipf_workload_safe () =
  let proto = fig1_proto () in
  let s = Harness.default_scenario ~proto in
  let r =
    Harness.run
      { s with Harness.n_clients = 4; ops_per_client = 60; zipf_theta = 0.99 }
  in
  Alcotest.(check int) "no violations with skewed keys" 0
    r.Harness.safety_violations;
  Alcotest.(check int) "all complete" 240 (r.Harness.reads_ok + r.Harness.writes_ok)

let test_no_locks_still_safe_single_client () =
  (* A single closed-loop client is serialized by construction, so even
     lock-free runs must stay safe. *)
  let proto = fig1_proto () in
  let s = Harness.default_scenario ~proto in
  let r =
    Harness.run { s with Harness.n_clients = 1; ops_per_client = 100; use_locks = false }
  in
  Alcotest.(check int) "no violations" 0 r.Harness.safety_violations

let test_read_repair_heals_stale_replica () =
  let proto = fig1_proto () in
  let config = { Coordinator.default_config with Coordinator.read_repair = true } in
  let ctx = setup ~proto ~config () in
  (* Replica 7 misses a write while crashed... *)
  Network.crash ctx.net 7;
  ignore (do_write ctx 1 "fresh");
  Network.recover ctx.net 7;
  let stale_ts, _ = Replication.Store.read (Replica.store ctx.replicas.(7)) ~key:1 in
  Alcotest.(check bool) "stale before repair" true
    (Timestamp.equal stale_ts Timestamp.zero);
  (* ...then catches up as soon as a read quorum includes it.  Force its
     inclusion by killing the rest of its level. *)
  List.iter (Network.crash ctx.net) [ 3; 4; 5; 6 ];
  (match do_read ctx 1 with
  | Some { Coordinator.value; _ } -> Alcotest.(check string) "read ok" "fresh" value
  | None -> Alcotest.fail "read should succeed");
  Engine.run ctx.engine;
  let healed_ts, healed_v =
    Replication.Store.read (Replica.store ctx.replicas.(7)) ~key:1
  in
  Alcotest.(check string) "repaired value" "fresh" healed_v;
  Alcotest.(check bool) "repaired ts" true
    (not (Timestamp.equal healed_ts Timestamp.zero));
  Alcotest.(check bool) "replica counted the repair" true
    (Replica.repairs_applied ctx.replicas.(7) = 1);
  let m = Coordinator.metrics ctx.coord in
  Alcotest.(check bool) "coordinator counted the repair" true
    (m.Coordinator.repairs_sent >= 1)

let test_read_repair_off_by_default () =
  let ctx = setup () in
  Network.crash ctx.net 7;
  ignore (do_write ctx 1 "x");
  Network.recover ctx.net 7;
  List.iter (Network.crash ctx.net) [ 3; 4; 5; 6 ];
  ignore (do_read ctx 1);
  Engine.run ctx.engine;
  Alcotest.(check int) "no repairs sent" 0
    (Coordinator.metrics ctx.coord).Coordinator.repairs_sent

let test_timeout_based_failure_detector () =
  (* oracle_view = false: the coordinator discovers crashes by timeouts and
     suspicion, and still completes operations. *)
  let config =
    { Coordinator.default_config with Coordinator.oracle_view = false }
  in
  let ctx = setup ~config () in
  Network.crash ctx.net 0;
  (* First attempt will include replica 0 (not yet suspected), time out,
     suspect it, and retry successfully. *)
  (match do_write ctx 1 "detected" with
  | Some _ -> ()
  | None -> Alcotest.fail "write must succeed after suspicion");
  let m = Coordinator.metrics ctx.coord in
  Alcotest.(check bool) "at least one retry happened" true
    (m.Coordinator.retries >= 1);
  match do_read ctx 1 with
  | Some { Coordinator.value; _ } -> Alcotest.(check string) "value" "detected" value
  | None -> Alcotest.fail "read must succeed"

let test_harness_with_read_repair_under_churn () =
  let proto = fig1_proto () in
  let rng = Dsutil.Rng.create 77 in
  let failures =
    Failure.random_crash_recovery ~rng ~n:8 ~horizon:300.0 ~mtbf:80.0 ~mttr:25.0
  in
  let s = Harness.default_scenario ~proto in
  let r =
    Harness.run
      {
        s with
        Harness.n_clients = 3;
        ops_per_client = 60;
        failures;
        coordinator =
          { Coordinator.default_config with Coordinator.read_repair = true };
      }
  in
  Alcotest.(check int) "still zero violations" 0 r.Harness.safety_violations

(* Level-pipelined tree reads change only dispatch order, never results.
   With a single client, failure-free, a seeded run's read results are a
   pure function of the op sequence — so the full (key, value, timestamp)
   trace and the completed-op count must match the level-barrier run
   exactly.  (Multi-client runs legitimately diverge: pipelining shifts
   which messages draw which latencies, so concurrent ops interleave
   differently.) *)
let test_pipelined_reads_equivalent () =
  let trace ~seed ~pipeline =
    let s = Harness.default_scenario ~proto:(fig1_proto ()) in
    let acc = ref [] in
    let r =
      Harness.run
        ~read_probe:(fun ~key { Coordinator.value; ts; _ } ->
          acc := (key, value, ts.Timestamp.version, ts.Timestamp.sid) :: !acc)
        {
          s with
          Harness.seed;
          n_clients = 1;
          ops_per_client = 150;
          coordinator =
            {
              s.Harness.coordinator with
              Coordinator.pipeline_levels = pipeline;
            };
        }
    in
    (List.rev !acc, Harness.completed r)
  in
  List.iter
    (fun seed ->
      let barrier, done_b = trace ~seed ~pipeline:false in
      let piped, done_p = trace ~seed ~pipeline:true in
      Alcotest.(check bool) "reads were traced" true (List.length barrier > 0);
      Alcotest.(check int) "same completed ops" done_b done_p;
      Alcotest.(check bool) "identical read results" true (barrier = piped))
    [ 7; 23 ]

(* Pipelining under churn and loss must stay safe even where results can
   legitimately differ from the barrier schedule. *)
let test_pipelined_reads_safe_under_churn () =
  let rng = Dsutil.Rng.create 31 in
  let failures =
    Failure.random_crash_recovery ~rng ~n:8 ~horizon:300.0 ~mtbf:90.0
      ~mttr:20.0
  in
  let s = Harness.default_scenario ~proto:(fig1_proto ()) in
  let r =
    Harness.run
      {
        s with
        Harness.n_clients = 3;
        ops_per_client = 60;
        loss_rate = 0.03;
        failures;
        coordinator =
          { s.Harness.coordinator with Coordinator.pipeline_levels = true };
      }
  in
  Alcotest.(check int) "zero violations pipelined" 0
    r.Harness.safety_violations

let suite =
  [
    Alcotest.test_case "read on fresh system" `Quick test_read_fresh;
    Alcotest.test_case "write then read" `Quick test_write_then_read;
    Alcotest.test_case "versions increment" `Quick test_versions_increment;
    Alcotest.test_case "keys independent" `Quick test_keys_independent;
    Alcotest.test_case "write survives level-wise crash" `Quick
      test_write_survives_levelwise_crash;
    Alcotest.test_case "dead level blocks operations" `Quick
      test_read_blocked_by_dead_level;
    Alcotest.test_case "crash + recovery" `Quick test_crash_recovery_mid_run;
    Alcotest.test_case "ROWA write blocked by crash" `Quick
      test_rowa_write_blocked_by_single_crash;
    Alcotest.test_case "majority under partition" `Quick test_majority_partition;
    Alcotest.test_case "coordinator metrics" `Quick test_metrics_counted;
    Alcotest.test_case "replica counters" `Quick test_replica_counters;
    Alcotest.test_case "harness happy path" `Quick test_harness_happy_path;
    Alcotest.test_case "harness determinism" `Quick test_harness_determinism;
    Alcotest.test_case "harness with message loss" `Quick test_harness_message_loss;
    Alcotest.test_case "pipelined reads equal barrier reads" `Quick
      test_pipelined_reads_equivalent;
    Alcotest.test_case "pipelined reads safe under churn" `Quick
      test_pipelined_reads_safe_under_churn;
    Alcotest.test_case "safety matrix under churn" `Slow test_safety_matrix;
    Alcotest.test_case "single client without locks" `Quick
      test_no_locks_still_safe_single_client;
    Alcotest.test_case "read repair heals a stale replica" `Quick
      test_read_repair_heals_stale_replica;
    Alcotest.test_case "read repair off by default" `Quick
      test_read_repair_off_by_default;
    Alcotest.test_case "timeout-based failure detector" `Quick
      test_timeout_based_failure_detector;
    Alcotest.test_case "read repair under churn stays safe" `Quick
      test_harness_with_read_repair_under_churn;
    Alcotest.test_case "zipf workload stays safe" `Quick test_zipf_workload_safe;
  ]
