(* Shared conformance tests for every baseline protocol: quorum systems
   intersect, assembly agrees with exhaustive enumeration (completeness),
   and assembled quorums are members of the enumerated family. *)

module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Protocol = Quorum.Protocol
module Quorum_set = Quorum.Quorum_set

let random_alive rng n = Quorum.Availability.random_alive rng ~n ~p:0.6

(* Assembly must return Some iff some enumerated quorum is fully alive, and
   any returned set must contain an enumerated quorum built from alive
   replicas. *)
let check_assembly_conformance ~name proto =
  let n = Protocol.universe_size proto in
  let reads = Protocol.read_quorum_set proto in
  let writes = Protocol.write_quorum_set proto in
  let rng = Rng.create 4242 in
  for _ = 1 to 300 do
    let alive = random_alive rng n in
    let check_kind kind qs assemble =
      let expected = Quorum_set.can_form_within qs ~alive in
      match assemble ~alive ~rng with
      | None ->
        Alcotest.(check bool)
          (Printf.sprintf "%s %s: assembly complete" name kind)
          false expected
      | Some q ->
        Alcotest.(check bool)
          (Printf.sprintf "%s %s: exists when assembled" name kind)
          true expected;
        Alcotest.(check bool)
          (Printf.sprintf "%s %s: quorum members alive" name kind)
          true (Bitset.subset q alive);
        Alcotest.(check bool)
          (Printf.sprintf "%s %s: contains an enumerated quorum" name kind)
          true
          (Array.exists (fun q' -> Bitset.subset q' q) qs.Quorum_set.quorums)
    in
    check_kind "read" reads (Protocol.read_quorum proto);
    check_kind "write" writes (Protocol.write_quorum proto)
  done

let check_bicoterie ~name proto =
  let reads = Protocol.read_quorum_set proto in
  let writes = Protocol.write_quorum_set proto in
  Alcotest.(check bool)
    (Printf.sprintf "%s: read/write quorums form a bicoterie" name)
    true
    (Quorum_set.is_bicoterie ~read:reads ~write:writes)

let instances =
  [
    ("ROWA-5", Quorum.Rowa.protocol (Quorum.Rowa.create ~n:5));
    ("Majority-5", Quorum.Majority.protocol (Quorum.Majority.create ~n:5));
    ("Grid-3x3", Quorum.Grid.protocol (Quorum.Grid.create ~rows:3 ~cols:3));
    ("Grid-2x4", Quorum.Grid.protocol (Quorum.Grid.create ~rows:2 ~cols:4));
    ("Maekawa-9", Quorum.Maekawa.protocol (Quorum.Maekawa.create ~k:3));
    ("TreeQuorum-h2", Quorum.Tree_quorum.protocol (Quorum.Tree_quorum.create ~height:2));
    ("TreeQuorum-h3", Quorum.Tree_quorum.protocol (Quorum.Tree_quorum.create ~height:3));
    ("HQC-d2", Quorum.Hqc.protocol (Quorum.Hqc.create ~depth:2));
    ( "WeightedVoting-4",
      Quorum.Weighted_voting.protocol
        (Quorum.Weighted_voting.create ~votes:[| 3; 2; 1; 1 |] ~r:3 ~w:5) );
    ("TQP-VLDB90-h1", Quorum.Tqp.protocol (Quorum.Tqp.create ~d:1 ~height:1));
    ( "Arbitrary-1-3-5",
      Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ()) );
    ( "Arbitrary-2-3-4",
      Arbitrary.Quorums.protocol (Arbitrary.Tree.of_spec "2-3-4") );
  ]

let conformance_cases =
  List.map
    (fun (name, proto) ->
      Alcotest.test_case (name ^ " assembly conformance") `Slow (fun () ->
          check_assembly_conformance ~name proto))
    instances

let bicoterie_cases =
  List.map
    (fun (name, proto) ->
      Alcotest.test_case (name ^ " bicoterie") `Quick (fun () ->
          check_bicoterie ~name proto))
    instances

let suite = bicoterie_cases @ conformance_cases
