module Bitset = Dsutil.Bitset
module Quorum_set = Quorum.Quorum_set

let test_create_validation () =
  Alcotest.check_raises "empty list"
    (Invalid_argument "Quorum_set.create: empty quorum list") (fun () ->
      ignore (Quorum_set.create ~universe:3 []));
  Alcotest.check_raises "empty quorum"
    (Invalid_argument "Quorum_set.create: empty quorum") (fun () ->
      ignore (Quorum_set.of_lists ~universe:3 [ [] ]))

let test_intersection_property () =
  let majority = Quorum_set.of_lists ~universe:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  Alcotest.(check bool) "majority intersects" true
    (Quorum_set.is_quorum_system majority);
  let disjoint = Quorum_set.of_lists ~universe:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  Alcotest.(check bool) "disjoint does not" false
    (Quorum_set.is_quorum_system disjoint)

let test_coterie () =
  let majority = Quorum_set.of_lists ~universe:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  Alcotest.(check bool) "majority is coterie" true (Quorum_set.is_coterie majority);
  let dominated =
    Quorum_set.of_lists ~universe:3 [ [ 0; 1 ]; [ 0; 1; 2 ] ]
  in
  Alcotest.(check bool) "superset breaks minimality" false
    (Quorum_set.is_coterie dominated)

let test_bicoterie () =
  (* ROWA: singletons vs the full set. *)
  let read = Quorum_set.of_lists ~universe:3 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let write = Quorum_set.of_lists ~universe:3 [ [ 0; 1; 2 ] ] in
  Alcotest.(check bool) "ROWA bicoterie" true (Quorum_set.is_bicoterie ~read ~write);
  Alcotest.(check bool) "reads alone are not a quorum system" false
    (Quorum_set.is_quorum_system read);
  let bad_write = Quorum_set.of_lists ~universe:3 [ [ 1; 2 ] ] in
  Alcotest.(check bool) "missing site breaks bicoterie" false
    (Quorum_set.is_bicoterie ~read ~write:bad_write)

let test_bicoterie_universe_mismatch () =
  let read = Quorum_set.of_lists ~universe:3 [ [ 0 ] ] in
  let write = Quorum_set.of_lists ~universe:4 [ [ 0 ] ] in
  Alcotest.check_raises "universe mismatch"
    (Invalid_argument "Quorum_set.is_bicoterie: universe mismatch") (fun () ->
      ignore (Quorum_set.is_bicoterie ~read ~write))

let test_minimize () =
  let qs =
    Quorum_set.of_lists ~universe:4 [ [ 0; 1 ]; [ 0; 1; 2 ]; [ 2; 3 ]; [ 2; 3 ] ]
  in
  let m = Quorum_set.minimize qs in
  Alcotest.(check int) "dominated and duplicate dropped" 2 (Quorum_set.size m);
  Alcotest.(check bool) "result minimal" false
    (Quorum_set.is_coterie qs && false);
  Alcotest.(check int) "smallest quorum" 2 (Quorum_set.smallest_quorum_size m)

let test_can_form_within () =
  let qs = Quorum_set.of_lists ~universe:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  Alcotest.(check bool) "can form" true
    (Quorum_set.can_form_within qs ~alive:(Bitset.of_list 4 [ 0; 1 ]));
  Alcotest.(check bool) "cannot form" false
    (Quorum_set.can_form_within qs ~alive:(Bitset.of_list 4 [ 0; 2 ]))

let test_mem_site () =
  let qs = Quorum_set.of_lists ~universe:4 [ [ 0; 1 ] ] in
  Alcotest.(check bool) "member" true (Quorum_set.mem_site qs 1);
  Alcotest.(check bool) "non-member" false (Quorum_set.mem_site qs 3)

let test_domination_basics () =
  (* The star coterie {{0,1},{0,2},{0,3}} is dominated: {1,2,3} intersects
     every quorum without containing one. *)
  let star = Quorum_set.of_lists ~universe:4 [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ] in
  (match Quorum_set.find_dominating star with
  | Some d ->
    Alcotest.(check bool) "dominates" true (Quorum_set.dominates d ~over:star);
    Alcotest.(check bool) "still a coterie" true (Quorum_set.is_coterie d);
    Alcotest.(check bool) "asymmetric" false (Quorum_set.dominates star ~over:d)
  | None -> Alcotest.fail "star coterie must be dominated");
  (* Majority over an odd universe is non-dominated. *)
  let maj = Quorum_set.of_lists ~universe:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  Alcotest.(check bool) "majority-3 non-dominated" true
    (Quorum_set.find_dominating maj = None);
  let maj5 =
    Quorum_set.of_lists ~universe:5
      [ [0;1;2]; [0;1;3]; [0;1;4]; [0;2;3]; [0;2;4]; [0;3;4];
        [1;2;3]; [1;2;4]; [1;3;4]; [2;3;4] ]
  in
  Alcotest.(check bool) "majority-5 non-dominated" true
    (Quorum_set.find_dominating maj5 = None)

let test_domination_not_reflexive () =
  let maj = Quorum_set.of_lists ~universe:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  Alcotest.(check bool) "not self-dominating" false
    (Quorum_set.dominates maj ~over:maj)

let test_tree_quorum_coterie_domination () =
  (* The tree-quorum coterie on 3 nodes IS the majority coterie — hence
     non-dominated; the ROWA write "coterie" {U} is dominated by any
     singleton-containing coterie. *)
  let tq =
    Quorum.Protocol.read_quorum_set
      (Quorum.Tree_quorum.protocol (Quorum.Tree_quorum.create ~height:1))
  in
  Alcotest.(check bool) "h=1 tree quorum non-dominated" true
    (Quorum_set.find_dominating tq = None);
  let rowa_writes = Quorum_set.of_lists ~universe:3 [ [ 0; 1; 2 ] ] in
  Alcotest.(check bool) "ROWA writes dominated" true
    (Quorum_set.find_dominating rowa_writes <> None)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "intersection property" `Quick test_intersection_property;
    Alcotest.test_case "coterie minimality" `Quick test_coterie;
    Alcotest.test_case "bicoterie" `Quick test_bicoterie;
    Alcotest.test_case "bicoterie universe mismatch" `Quick
      test_bicoterie_universe_mismatch;
    Alcotest.test_case "minimize" `Quick test_minimize;
    Alcotest.test_case "can_form_within" `Quick test_can_form_within;
    Alcotest.test_case "mem_site" `Quick test_mem_site;
    Alcotest.test_case "domination basics" `Quick test_domination_basics;
    Alcotest.test_case "domination not reflexive" `Quick
      test_domination_not_reflexive;
    Alcotest.test_case "tree-quorum / ROWA domination" `Quick
      test_tree_quorum_coterie_domination;
  ]
