module Load_lp = Analysis.Load_lp
module Quorum_set = Quorum.Quorum_set
module Strategy = Quorum.Strategy

let feq ?(eps = 1e-6) a b = abs_float (a -. b) < eps

let test_singleton () =
  (* One quorum containing one site: the only strategy loads it fully. *)
  let qs = Quorum_set.of_lists ~universe:1 [ [ 0 ] ] in
  Alcotest.(check bool) "load 1" true (feq (Load_lp.optimal_load qs) 1.0)

let test_majority_3 () =
  let qs = Quorum_set.of_lists ~universe:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  Alcotest.(check bool) "load 2/3" true (feq (Load_lp.optimal_load qs) (2.0 /. 3.0))

let test_singleton_universe_rowa_reads () =
  (* n singleton read quorums: spreading evenly gives 1/n. *)
  let qs = Quorum_set.of_lists ~universe:5 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ] in
  Alcotest.(check bool) "load 1/5" true (feq (Load_lp.optimal_load qs) 0.2)

let test_common_site_forces_load_1 () =
  (* Site 0 in every quorum: load cannot drop below 1. *)
  let qs = Quorum_set.of_lists ~universe:4 [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ] in
  Alcotest.(check bool) "load 1" true (feq (Load_lp.optimal_load qs) 1.0)

let test_strategy_is_optimal_and_valid () =
  let qs = Quorum_set.of_lists ~universe:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  let load, weights = Load_lp.optimal_strategy qs in
  let strat = Strategy.of_weights weights in
  Alcotest.(check bool) "weights form a distribution" true
    (Strategy.is_distribution strat);
  Alcotest.(check bool) "achieves its own load" true
    (Strategy.system_load qs strat <= load +. 1e-6)

let test_grid_load () =
  (* 2x2 grid read quorums: one site per column -> load 1/2. *)
  let g = Quorum.Grid.create ~rows:2 ~cols:2 in
  let qs = Quorum.Protocol.read_quorum_set (Quorum.Grid.protocol g) in
  Alcotest.(check bool) "grid read load" true
    (feq (Load_lp.optimal_load qs) (Quorum.Grid.read_load g))

let test_maekawa_load () =
  let m = Quorum.Maekawa.create ~k:2 in
  let qs = Quorum.Protocol.read_quorum_set (Quorum.Maekawa.protocol m) in
  (* k=2: quorum size 3 over 4 sites; uniform strategy gives 3/4. *)
  Alcotest.(check bool) "maekawa load" true
    (feq (Load_lp.optimal_load qs) (Quorum.Maekawa.load m))

let test_witness_rejections () =
  let qs = Quorum_set.of_lists ~universe:2 [ [ 0 ]; [ 1 ] ] in
  (* Not summing to one. *)
  Alcotest.(check bool) "bad sum rejected" false
    (Load_lp.check_witness qs ~y:[| 0.2; 0.2 |] ~load:0.2);
  (* Wrong arity. *)
  Alcotest.(check bool) "bad arity rejected" false
    (Load_lp.check_witness qs ~y:[| 1.0 |] ~load:0.5);
  (* A quorum below the claimed load. *)
  Alcotest.(check bool) "low quorum rejected" false
    (Load_lp.check_witness qs ~y:[| 1.0; 0.0 |] ~load:0.5);
  (* Valid: y = (1/2, 1/2), both quorums get 1/2. *)
  Alcotest.(check bool) "valid witness" true
    (Load_lp.check_witness qs ~y:[| 0.5; 0.5 |] ~load:0.5)

let test_naor_wool_sqrt_bound () =
  (* Naor–Wool: every quorum system has load >= max(1/c(S), c(S)/n) where
     c(S) is the smallest quorum size; so load >= 1/sqrt(n).  Check the
     bound holds for all our small systems. *)
  let systems =
    [
      Quorum.Protocol.read_quorum_set
        (Quorum.Maekawa.protocol (Quorum.Maekawa.create ~k:3));
      Quorum.Protocol.read_quorum_set
        (Quorum.Tree_quorum.protocol (Quorum.Tree_quorum.create ~height:2));
      Quorum.Protocol.read_quorum_set (Quorum.Hqc.protocol (Quorum.Hqc.create ~depth:2));
    ]
  in
  List.iter
    (fun (qs : Quorum_set.t) ->
      let n = float_of_int qs.Quorum_set.universe in
      let c = float_of_int (Quorum_set.smallest_quorum_size qs) in
      let lower = Float.max (1.0 /. c) (c /. n) in
      Alcotest.(check bool) "NW lower bound" true
        (Load_lp.optimal_load qs >= lower -. 1e-6))
    systems

let suite =
  [
    Alcotest.test_case "singleton system" `Quick test_singleton;
    Alcotest.test_case "majority-3 load" `Quick test_majority_3;
    Alcotest.test_case "ROWA reads load 1/n" `Quick test_singleton_universe_rowa_reads;
    Alcotest.test_case "common site forces load 1" `Quick
      test_common_site_forces_load_1;
    Alcotest.test_case "optimal strategy is valid" `Quick
      test_strategy_is_optimal_and_valid;
    Alcotest.test_case "grid read load" `Quick test_grid_load;
    Alcotest.test_case "maekawa load" `Quick test_maekawa_load;
    Alcotest.test_case "witness rejections" `Quick test_witness_rejections;
    Alcotest.test_case "Naor-Wool lower bound" `Quick test_naor_wool_sqrt_bound;
  ]
