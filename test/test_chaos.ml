(* Fault-injection tests over the chaos campaign: safety must hold under
   every schedule × configuration × detector, and the heartbeat detector
   must stay close to the oracle on crash-only schedules.  All runs are
   seeded and deterministic. *)

module Chaos = Eval.Chaos
module Harness = Replication.Harness

let small ?(schedules = [ Chaos.combined_schedule ]) ?(seed = 42) () =
  Chaos.run ~clients:2 ~ops:10 ~seed ~horizon:1500.0 ~schedules ()

let cell_label c =
  Printf.sprintf "%s/%s/%s"
    (Arbitrary.Config.name_to_string c.Chaos.config)
    c.Chaos.schedule
    (Chaos.detector_to_string c.Chaos.detector)

let test_combined_safety () =
  (* Crash churn + recurring partitions + message loss at once, all four
     paper configurations, both detectors. *)
  let campaign = small () in
  Alcotest.(check int) "8 cells" 8 (List.length campaign.Chaos.cells);
  List.iter
    (fun c ->
      Alcotest.(check int)
        (cell_label c ^ ": no stale reads")
        0 c.Chaos.report.Harness.safety_violations;
      Alcotest.(check bool)
        (cell_label c ^ ": made progress")
        true
        (c.Chaos.report.Harness.reads_ok + c.Chaos.report.Harness.writes_ok
        > 0))
    campaign.Chaos.cells;
  Alcotest.(check int) "campaign total" 0 campaign.Chaos.safety_violations

let test_safety_across_seeds () =
  List.iter
    (fun seed ->
      let campaign = small ~seed () in
      Alcotest.(check int)
        (Printf.sprintf "seed %d" seed)
        0 campaign.Chaos.safety_violations)
    [ 7; 1234 ]

let test_crash_parity () =
  let campaign = small ~schedules:[ Chaos.crashes_schedule ] () in
  Alcotest.(check int) "no violations" 0 campaign.Chaos.safety_violations;
  let gap = Chaos.crash_parity_gap campaign in
  if gap > 0.10 then
    Alcotest.failf
      "heartbeat detection loses %.3f success-rate points to the oracle \
       under crash churn (budget 0.10)"
      gap

let test_detector_bookkeeping () =
  let campaign = small ~schedules:[ Chaos.crashes_schedule ] () in
  List.iter
    (fun c ->
      match c.Chaos.detector with
      | Chaos.Oracle ->
        Alcotest.(check int)
          (cell_label c ^ ": oracle sends no probes")
          0 c.Chaos.report.Harness.heartbeat_pings
      | Chaos.Heartbeat ->
        Alcotest.(check bool)
          (cell_label c ^ ": monitor probed")
          true
          (c.Chaos.report.Harness.heartbeat_pings > 0))
    campaign.Chaos.cells

let test_deterministic () =
  let summary campaign =
    List.map
      (fun c ->
        ( cell_label c,
          c.Chaos.report.Harness.reads_ok,
          c.Chaos.report.Harness.writes_ok,
          c.Chaos.report.Harness.retries,
          c.Chaos.report.Harness.messages_delivered ))
      campaign.Chaos.cells
  in
  let a = summary (small ()) and b = summary (small ()) in
  Alcotest.(check bool) "same seed, same campaign" true (a = b)

(* The amnesia acceptance gates at test size: durable WAL + catch-up keeps
   every configuration consistent; the negative control (async WAL, no
   catch-up, total blackout) must be caught by the checker on every
   configuration — a gate that cannot fail proves nothing. *)
let test_amnesia_gate_all_configs () =
  let cells =
    Chaos.run_amnesia ~n:21 ~clients:2 ~ops:10 ~seed:42 ~horizon:2000.0 ()
  in
  Alcotest.(check int) "four cells" 4 (List.length cells);
  List.iter
    (fun c ->
      let label = Arbitrary.Config.name_to_string c.Chaos.a_config in
      Alcotest.(check int)
        (label ^ ": online safety") 0
        c.Chaos.a_report.Harness.safety_violations;
      Alcotest.(check int)
        (label ^ ": offline consistency") 0
        (List.length c.Chaos.a_consistency.Eval.Consistency.violations))
    cells;
  Alcotest.(check int) "campaign total" 0 (Chaos.amnesia_violations cells)

let test_amnesia_negative_control () =
  (* Campaign size: smaller trees leave too few overlapping ops for every
     configuration to witness a lost write. *)
  let cells = Chaos.run_amnesia_negative ~seed:42 () in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Arbitrary.Config.name_to_string c.Chaos.a_config
        ^ ": checker catches lost writes")
        true
        (c.Chaos.a_consistency.Eval.Consistency.violations <> []))
    cells

let suite =
  [
    Alcotest.test_case "combined chaos keeps safety" `Quick
      test_combined_safety;
    Alcotest.test_case "safety holds across seeds" `Quick
      test_safety_across_seeds;
    Alcotest.test_case "heartbeat parity under crash churn" `Quick
      test_crash_parity;
    Alcotest.test_case "detector bookkeeping" `Quick test_detector_bookkeeping;
    Alcotest.test_case "campaign is deterministic" `Quick test_deterministic;
    Alcotest.test_case "amnesia gate holds on every configuration" `Quick
      test_amnesia_gate_all_configs;
    Alcotest.test_case "amnesia negative control fires" `Quick
      test_amnesia_negative_control;
  ]
