The paper's worked example (§3.4): build the Figure-1 tree and analyze it.

  $ replica-ctl tree --spec 1-3-5
  level 0: 0 physical, 1 logical
  level 1: 3 physical, 0 logical (sites 0..2)
  level 2: 5 physical, 0 logical (sites 3..7)
  n=8 height=2
  spec: 1-3-5
  satisfies assumption 3.1: true

  $ replica-ctl analyze --spec 1-3-5 -p 0.7
  tree 1-3-5 (n=8)
  read : cost=2  avail=0.9706  load=0.3333  expected-load=0.3529
  write: cost=3..5 (avg 4.00)  avail=0.4534  load=0.5000  expected-load=0.7733
  write operation availability (incl. version-phase read): 0.4481

Quorum enumeration on a small tree (Facts 3.2.1 / 3.2.2):

  $ replica-ctl quorums --spec 1-2-3
  read quorums (m(R) = 6):
    {0,2}
    {0,3}
    {0,4}
    {1,2}
    {1,3}
    {1,4}
  write quorums (m(W) = 2):
    {0,1}
    {2,3,4}

The planner picks more physical levels as writes dominate (§3.3):

  $ replica-ctl plan -n 100 -p 0.8 --read-fraction 0.1 | head -2
  best trees for n=100, p=0.80, 10% reads:
    1. score 0.0639  |K_phy|=25   1-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4

Resilience numbers come from the tree shape:

  $ replica-ctl tree --config mostly-write -n 9
  level 0: 0 physical, 1 logical
  level 1: 2 physical, 0 logical (sites 0..1)
  level 2: 2 physical, 0 logical (sites 2..3)
  level 3: 2 physical, 0 logical (sites 4..5)
  level 4: 3 physical, 0 logical (sites 6..8)
  n=9 height=4
  spec: 1-2-2-2-3
  satisfies assumption 3.1: true

Figure/table regeneration is deterministic:

  $ replica-ctl figures --section table1 | head -8
  == Table 1: node counts of the Figure-1 tree (spec 1-3-5) ==
  level k  m_k  m_phy k  m_log k
  -------  ---  -------  -------
  0        1    0        1      
  1        3    3        0      
  2        9    5        4      
  worked example (p=0.7): m(R)=15 m(W)=2
  RD_cost=2 RD_avail=0.97 L_RD=0.3333 E[L_RD]=0.3529

Transactions conserve the counter total (conservation line is the check):

  $ replica-ctl txn -n 24 --txns 10 | tail -2
  increments: 28 committed + 0 uncertain; observed total 28
  conservation: OK

Graphviz export marks physical nodes as boxes:

  $ replica-ctl tree --spec 1-2-2 --dot | grep -c "shape=box"
  4

Configurations that are not arbitrary trees are rejected gracefully:

  $ replica-ctl tree --config hqc
  replica-ctl: Config.build: HQC is not an arbitrary tree (use Quorum.Hqc)
  [1]

  $ replica-ctl tree --spec 0-3
  replica-ctl: Tree.of_spec: bad component "0"
  [1]

End-to-end simulation from the CLI is deterministic under a fixed seed:

  $ replica-ctl simulate -n 8 --clients 2 --ops 20 --seed 3
  ARBITRARY over 8 replicas:
  duration=100000.0
  reads: ok=20 failed=0  writes: ok=20 failed=0  retries=0
  safety violations=0
  read latency: mean=3.13 p99=6.77   write latency: mean=10.29 p99=15.07
  messages: sent=480 delivered=480 dropped=0 (12.0 per op)

Level-pipelined read dispatch is a pure hot-path optimization: quorum
selection consumes the RNG exactly as whole-quorum assembly would, so a
seeded run reports the same results, the same message count and the same
latencies — the flag changes dispatch order and allocation, never
outcomes:

  $ replica-ctl simulate -n 8 --clients 2 --ops 20 --seed 3 --pipeline-levels
  ARBITRARY over 8 replicas:
  duration=100000.0
  reads: ok=20 failed=0  writes: ok=20 failed=0  retries=0
  safety violations=0
  read latency: mean=3.13 p99=6.77   write latency: mean=10.29 p99=15.07
  messages: sent=480 delivered=480 dropped=0 (12.0 per op)

A batch window of one op is byte-identical to the classic loop (same RNG
draw order, same messages, same latencies) — only the trailing batching
line is new, and it confirms no multi-key batch was ever formed:

  $ replica-ctl simulate -n 8 --clients 2 --ops 20 --seed 3 --batch 1
  ARBITRARY over 8 replicas:
  duration=100000.0
  reads: ok=20 failed=0  writes: ok=20 failed=0  retries=0
  safety violations=0
  read latency: mean=3.13 p99=6.77   write latency: mean=10.29 p99=15.07
  messages: sent=480 delivered=480 dropped=0 (12.0 per op)
  batching: batch=1 pipeline=1 batches=0 coalesced=0 wal syncs=0

Real batching collapses quorum rounds and 2PC exchanges into multi-key
envelopes: the same 40 client ops need 124 messages instead of 480 (3.1
per op, was 12.0), with the 160 saved per-op messages counted as
coalesced — and still zero safety violations:

  $ replica-ctl simulate -n 8 --clients 2 --ops 20 --seed 3 --batch 8 --pipeline 2 --group-commit
  ARBITRARY over 8 replicas:
  duration=100000.0
  reads: ok=24 failed=0  writes: ok=16 failed=0  retries=0
  safety violations=0
  read latency: mean=2.67 p99=6.43   write latency: mean=10.73 p99=12.01
  messages: sent=124 delivered=124 dropped=0 (3.1 per op)
  batching: batch=8 pipeline=2 batches=9 coalesced=160 wal syncs=0

A single shard is the unsharded fast path: same RNG draws, same events,
byte-identical output with no sharding trailer — compare against the
plain run above:

  $ replica-ctl simulate -n 8 --clients 2 --ops 20 --seed 3 --shards 1
  ARBITRARY over 8 replicas:
  duration=100000.0
  reads: ok=20 failed=0  writes: ok=20 failed=0  retries=0
  safety violations=0
  read latency: mean=3.13 p99=6.77   write latency: mean=10.29 p99=15.07
  messages: sent=480 delivered=480 dropped=0 (12.0 per op)

Sharding the keyspace over four independent trees routes each key to one
tree instance and reports the per-shard operation and key histograms
(the read/write mix shifts because each client op now draws keys that
land on different shards' RNG streams):

  $ replica-ctl simulate -n 8 --clients 2 --ops 20 --seed 3 --shards 4
  ARBITRARY over 8 replicas:
  duration=100000.0
  reads: ok=14 failed=0  writes: ok=26 failed=0  retries=0
  safety violations=0
  read latency: mean=3.64 p99=7.69   write latency: mean=10.56 p99=18.39
  messages: sent=576 delivered=576 dropped=0 (14.4 per op)
  sharding: shards=4 strategy=hash active=[0;1;2;3]
  per-shard ops=[15;5;4;16] keys=[3;1;1;3] imbalance=1.60

Range partitioning spreads this key space more evenly than hashing —
contiguous key blocks map to contiguous shards:

  $ replica-ctl simulate -n 8 --clients 2 --ops 20 --seed 3 --shards 4 --shard-strategy range
  ARBITRARY over 8 replicas:
  duration=100000.0
  reads: ok=14 failed=0  writes: ok=26 failed=0  retries=0
  safety violations=0
  read latency: mean=3.18 p99=6.56   write latency: mean=11.36 p99=17.71
  messages: sent=576 delivered=576 dropped=0 (14.4 per op)
  sharding: shards=4 strategy=range active=[0;1;2;3]
  per-shard ops=[9;10;9;12] keys=[2;2;2;2] imbalance=1.20

Chaos with amnesia crashes, a commit-durable WAL, and quorum catch-up keeps
every read regular (the consistency checker replays the span trace):

  $ replica-ctl chaos -n 9 --clients 2 --ops 8 --seed 7 --crash-mode amnesia --wal commit --check-consistency
  ARBITRARY over 9 replicas: schedule=crashes crash-mode=amnesia wal=commit catch-up=on
  duration=3000.0
  reads: ok=8 failed=0  writes: ok=8 failed=0  retries=1
  safety violations=0
  read latency: mean=3.62 p99=6.45   write latency: mean=12.95 p99=27.53
  messages: sent=2594 delivered=2589 dropped=5 (161.8 per op)
  recovery: rejoins=48 keys-caught-up=30 abandoned=0 wal-replayed=262 wal-lost=28 stale-rejected=0 stale-nacked=0 still-recovering=0
  consistency: reads=8 writes=8 unstamped=0 violations=0

Sharded chaos gives every shard its own independently-seeded failure
schedule (shard 0 reuses the unsharded seed) and still replays the whole
aggregate span trace through the checker:

  $ replica-ctl chaos -n 9 --clients 2 --ops 8 --seed 7 --crash-mode amnesia --wal commit --check-consistency --shards 2
  ARBITRARY over 9 replicas: schedule=crashes crash-mode=amnesia wal=commit catch-up=on
  duration=3000.0
  reads: ok=8 failed=0  writes: ok=8 failed=0  retries=0
  safety violations=0
  read latency: mean=4.57 p99=9.08   write latency: mean=9.45 p99=11.96
  messages: sent=2459 delivered=2453 dropped=6 (153.3 per op)
  sharding: shards=2 strategy=hash active=[0;1]
  per-shard ops=[10;6] keys=[5;3] imbalance=1.25
  recovery: rejoins=90 keys-caught-up=31 abandoned=0 wal-replayed=262 wal-lost=24 stale-rejected=0 stale-nacked=0 still-recovering=0
  consistency: reads=8 writes=8 unstamped=0 violations=0

The negative control — async WAL, catch-up off, total blackout — loses the
un-flushed suffix on every copy at once, and the checker names the stale
reads (non-zero exit makes it a gate):

  $ replica-ctl chaos -n 9 --clients 2 --ops 25 --seed 7 --crash-mode amnesia --wal async --wal-lag 80 --no-catch-up --schedule blackout --check-consistency
  ARBITRARY over 9 replicas: schedule=blackout crash-mode=amnesia wal=async(80) catch-up=off
  duration=3000.0
  reads: ok=28 failed=0  writes: ok=22 failed=0  retries=5
  safety violations=7
  read latency: mean=6.99 p99=80.92   write latency: mean=11.77 p99=47.45
  messages: sent=564 delivered=564 dropped=0 (11.3 per op)
  recovery: rejoins=0 keys-caught-up=0 abandoned=0 wal-replayed=9 wal-lost=45 stale-rejected=0 stale-nacked=0 still-recovering=0
  consistency: reads=28 writes=22 unstamped=0 violations=7
                 read #22 (key 5, started 172.8) returned v0@0 but write #10 (ended 63.4) committed v1@10
                 read #19 (key 5, started 100.8) returned v0@0 but write #10 (ended 63.4) committed v1@10
                 read #28 (key 7, started 221.8) returned v1@10 but write #15 (ended 93.5) committed v2@9
                 read #31 (key 7, started 244.7) returned v2@10 but write #15 (ended 93.5) committed v2@9
                 read #36 (key 7, started 262.6) returned v2@10 but write #15 (ended 93.5) committed v2@9
                 read #37 (key 6, started 266.1) returned v0@0 but write #9 (ended 56.7) committed v2@9
                 read #41 (key 6, started 278.9) returned v1@9 but write #9 (ended 56.7) committed v2@9
  replica-ctl: consistency violated
  [1]

Fail-stop chaos (the legacy mode) needs no WAL and reports no recovery line:

  $ replica-ctl chaos -n 9 --clients 2 --ops 8 --seed 7 --crash-mode failstop
  ARBITRARY over 9 replicas: schedule=crashes crash-mode=failstop wal=commit catch-up=on
  duration=3000.0
  reads: ok=7 failed=0  writes: ok=9 failed=0  retries=0
  safety violations=0
  read latency: mean=4.59 p99=8.57   write latency: mean=9.37 p99=13.07
  messages: sent=204 delivered=204 dropped=0 (12.8 per op)

CSV export writes one file per figure plus a gnuplot script:

  $ replica-ctl figures --section table1 --export out >/dev/null && ls out
  fig2_read_cost.csv
  fig2_write_cost.csv
  fig3_expected_read_load.csv
  fig3_read_load.csv
  fig4_expected_write_load.csv
  fig4_write_load.csv
  plot.gp

Overload exploration: the same flash crowd without and with the defenses
(bounded queues, shedding, retry budget, breaker).  Defenses show up in
the counters; neither run may violate safety:

  $ replica-ctl overload -n 9 --seed 7 --horizon 2000 --clients 6 --burst-clients 12
  ARBITRARY over 9 replicas: capacity=0 service=4.0 watermark=0 budget=off breaker=off burst=12
  duration=1997.8
  reads: ok=349 failed=0  writes: ok=76 failed=0  retries=33
  safety violations=0
  read latency: mean=17.59 p99=66.96   write latency: mean=53.72 p99=136.61
  messages: sent=3675 delivered=3674 dropped=0 (8.6 per op)
  overload: sheds=0 busy=0 suppressed=0 drops=0 trips=0 peak-queue=10
  goodput: pre-burst=0.102 post-burst=0.095 recovery=0.93

  $ replica-ctl overload -n 9 --seed 7 --horizon 2000 --clients 6 --burst-clients 12 --queue-capacity 24 --shed-watermark 6 --retry-budget 0.1 --breaker
  ARBITRARY over 9 replicas: capacity=24 service=4.0 watermark=6 budget=0.10 breaker=on burst=12
  duration=1996.9
  reads: ok=341 failed=8  writes: ok=74 failed=2  retries=25
  safety violations=0
  read latency: mean=16.98 p99=62.72   write latency: mean=48.56 p99=97.33
  messages: sent=3604 delivered=3601 dropped=0 (8.7 per op)
  overload: sheds=20 busy=19 suppressed=10 drops=0 trips=1 peak-queue=10
  goodput: pre-burst=0.102 post-burst=0.097 recovery=0.94

Membership churn: a crashed replica rejoins through chunked snapshot +
WAL-tail provisioning.  Killing the donor mid-transfer forces a donor
failover, and the rejoin resumes from the last durable chunk mark
instead of refetching from chunk 0:

  $ replica-ctl provision --config arbitrary -n 13 --crash-donor
  ARBITRARY over 13 replicas (+2 spares): fence=on
  clients: reads ok=41 failed=0 writes ok=33 failed=1
  provisioning: runs=2 chunks=16 resumes=1 donor-failovers=1 rounds=19 stale=0 failed-rejoins=0
  membership: promotions=0/0 decommissions=0
  status: [serving;serving;serving;serving;serving;serving;serving;serving;serving;serving;serving;serving;serving;serving;serving]
  violations: 0

Promotion replaces a position's occupant with a provisioned spare while
clients keep running; a partition during the bulk transfer only stalls
the flow until the heal:

  $ replica-ctl promote --config unmodified -n 7 --partition
  UNMODIFIED over 7 replicas (+2 spares): fence=on
  clients: reads ok=41 failed=0 writes ok=34 failed=0
  provisioning: runs=1 chunks=8 resumes=0 donor-failovers=0 rounds=14 stale=0 failed-rejoins=0
  membership: promotions=1/1 decommissions=0
  status: [serving;serving;serving;serving;serving;serving;serving;serving;serving]
  violations: 0

Decommission is the fenced flavor: the outgoing occupant of position 1
(site 1) ends permanently fenced, refusing every quorum role:

  $ replica-ctl decommission --config unmodified -n 7
  UNMODIFIED over 7 replicas (+2 spares): fence=on
  clients: reads ok=41 failed=0 writes ok=34 failed=0
  provisioning: runs=1 chunks=8 resumes=0 donor-failovers=0 rounds=10 stale=0 failed-rejoins=0
  membership: promotions=1/1 decommissions=1
  status: [serving;decommissioned;serving;serving;serving;serving;serving;serving;serving]
  violations: 0
