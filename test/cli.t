The paper's worked example (§3.4): build the Figure-1 tree and analyze it.

  $ replica-ctl tree --spec 1-3-5
  level 0: 0 physical, 1 logical
  level 1: 3 physical, 0 logical (sites 0..2)
  level 2: 5 physical, 0 logical (sites 3..7)
  n=8 height=2
  spec: 1-3-5
  satisfies assumption 3.1: true

  $ replica-ctl analyze --spec 1-3-5 -p 0.7
  tree 1-3-5 (n=8)
  read : cost=2  avail=0.9706  load=0.3333  expected-load=0.3529
  write: cost=3..5 (avg 4.00)  avail=0.4534  load=0.5000  expected-load=0.7733
  write operation availability (incl. version-phase read): 0.4481

Quorum enumeration on a small tree (Facts 3.2.1 / 3.2.2):

  $ replica-ctl quorums --spec 1-2-3
  read quorums (m(R) = 6):
    {0,2}
    {0,3}
    {0,4}
    {1,2}
    {1,3}
    {1,4}
  write quorums (m(W) = 2):
    {0,1}
    {2,3,4}

The planner picks more physical levels as writes dominate (§3.3):

  $ replica-ctl plan -n 100 -p 0.8 --read-fraction 0.1 | head -2
  best trees for n=100, p=0.80, 10% reads:
    1. score 0.0639  |K_phy|=25   1-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4-4

Resilience numbers come from the tree shape:

  $ replica-ctl tree --config mostly-write -n 9
  level 0: 0 physical, 1 logical
  level 1: 2 physical, 0 logical (sites 0..1)
  level 2: 2 physical, 0 logical (sites 2..3)
  level 3: 2 physical, 0 logical (sites 4..5)
  level 4: 3 physical, 0 logical (sites 6..8)
  n=9 height=4
  spec: 1-2-2-2-3
  satisfies assumption 3.1: true

Figure/table regeneration is deterministic:

  $ replica-ctl figures --section table1 | head -8
  == Table 1: node counts of the Figure-1 tree (spec 1-3-5) ==
  level k  m_k  m_phy k  m_log k
  -------  ---  -------  -------
  0        1    0        1      
  1        3    3        0      
  2        9    5        4      
  worked example (p=0.7): m(R)=15 m(W)=2
  RD_cost=2 RD_avail=0.97 L_RD=0.3333 E[L_RD]=0.3529

Transactions conserve the counter total (conservation line is the check):

  $ replica-ctl txn -n 24 --txns 10 | tail -2
  increments: 28 committed + 0 uncertain; observed total 28
  conservation: OK

Graphviz export marks physical nodes as boxes:

  $ replica-ctl tree --spec 1-2-2 --dot | grep -c "shape=box"
  4

Configurations that are not arbitrary trees are rejected gracefully:

  $ replica-ctl tree --config hqc
  replica-ctl: Config.build: HQC is not an arbitrary tree (use Quorum.Hqc)
  [1]

  $ replica-ctl tree --spec 0-3
  replica-ctl: Tree.of_spec: bad component "0"
  [1]

End-to-end simulation from the CLI is deterministic under a fixed seed:

  $ replica-ctl simulate -n 8 --clients 2 --ops 20 --seed 3
  ARBITRARY over 8 replicas:
  duration=100000.0
  reads: ok=20 failed=0  writes: ok=20 failed=0  retries=0
  safety violations=0
  read latency: mean=3.13 p99=6.77   write latency: mean=10.29 p99=15.07
  messages: sent=480 delivered=480 dropped=0 (12.0 per op)

CSV export writes one file per figure plus a gnuplot script:

  $ replica-ctl figures --section table1 --export out >/dev/null && ls out
  fig2_read_cost.csv
  fig2_write_cost.csv
  fig3_expected_read_load.csv
  fig3_read_load.csv
  fig4_expected_write_load.csv
  fig4_write_load.csv
  plot.gp
