(* End-to-end membership churn: promotion, decommission and provisioning
   rejoin under a client workload, plus the campaign's negative control
   and the cold-rejoin cost comparison. *)

module Churn_harness = Replication.Churn_harness
module Failure = Dsim.Failure
module Churn = Eval.Churn

let proto () =
  Eval.Config_metrics.protocol_of Arbitrary.Config.Unmodified ~n:7

(* Plain run, no faults, no membership: behaves like an ordinary
   harness run with two idle spares. *)
let test_quiet_run () =
  let s = Churn_harness.default_scenario ~proto:(proto ()) in
  let r = Churn_harness.run { s with Churn_harness.spares = 2 } in
  Alcotest.(check int) "no violations" 0 r.Churn_harness.safety_violations;
  Alcotest.(check bool) "work completed" true (Churn_harness.completed r > 0);
  Alcotest.(check int) "no transfers" 0 r.Churn_harness.provision_runs;
  Alcotest.(check bool) "spares idle but serving" true
    (Array.for_all (( = ) "serving") r.Churn_harness.replica_status)

(* A scripted fenced decommission completes and leaves exactly one site
   permanently fenced, with zero violations. *)
let test_decommission_flow () =
  let s = Churn_harness.default_scenario ~proto:(proto ()) in
  let n = Quorum.Protocol.universe_size (proto ()) in
  let r =
    Churn_harness.run
      {
        s with
        Churn_harness.spares = 1;
        chunk_size = 1;
        membership =
          [ { Churn_harness.at = 100.0; position = 1; spare = n; fence = true } ];
      }
  in
  Alcotest.(check int) "no violations" 0 r.Churn_harness.safety_violations;
  Alcotest.(check int) "promotion completed" 1 r.Churn_harness.promotions_done;
  Alcotest.(check int) "decommission completed" 1
    r.Churn_harness.decommissions_done;
  let fenced =
    Array.to_list r.Churn_harness.replica_status
    |> List.filter (( = ) "decommissioned")
    |> List.length
  in
  Alcotest.(check int) "exactly one site fenced" 1 fenced;
  Alcotest.(check string) "the outgoing occupant" "decommissioned"
    r.Churn_harness.replica_status.(1)

(* The four campaign scenarios on one config: fenced must be clean and
   must actually exercise failover, resume, promotion and decommission
   somewhere across the cells. *)
let test_campaign_single_config () =
  let cells =
    Churn.run ~n:13 ~configs:[ Arbitrary.Config.Arbitrary ] ()
  in
  Alcotest.(check int) "4 scenarios" 4 (List.length cells);
  Alcotest.(check int) "zero violations fenced" 0 (Churn.violations cells);
  let sum f =
    List.fold_left (fun acc c -> acc + f c.Churn.c_report) 0 cells
  in
  Alcotest.(check bool) "donor failover exercised" true
    (sum (fun r -> r.Churn_harness.provision_donor_failovers) >= 1);
  Alcotest.(check bool) "resume exercised" true
    (sum (fun r -> r.Churn_harness.provision_resumes) >= 1);
  Alcotest.(check bool) "promotions completed" true
    (sum (fun r -> r.Churn_harness.promotions_done) >= 4);
  Alcotest.(check bool) "a decommission completed" true
    (sum (fun r -> r.Churn_harness.decommissions_done) >= 1);
  Alcotest.(check int) "nothing stuck" 0
    (sum (fun r -> r.Churn_harness.failed_rejoins))

(* The negative control must leak: unfenced provisioning over an async
   WAL under a total blackout produces stale reads the oracle catches.
   A silent negative control would mean the gate tests nothing. *)
let test_negative_control_leaks () =
  let cells =
    Churn.run_negative ~n:13 ~configs:[ Arbitrary.Config.Mostly_read ] ()
  in
  Alcotest.(check bool) "at least one violation" true
    (Churn.violations cells >= 1)

(* Provisioning must beat per-key catch-up by a wide margin on a cold
   rejoin; the bench gate requires 5x, the unit test just checks the
   comparison is sane and strongly in provisioning's favor. *)
let test_cold_rejoin_comparison () =
  let rj = Churn.cold_rejoin_comparison ~keys:1000 ~chunk_size:64 () in
  Alcotest.(check bool) "both paths finished" true
    (rj.Churn.rj_catchup_serving && rj.Churn.rj_provision_serving);
  Alcotest.(check int) "catch-up pays one round per key" 1000
    rj.Churn.rj_catchup_rounds;
  Alcotest.(check bool) "provisioning pays per chunk" true
    (rj.Churn.rj_provision_rounds <= (1000 / 64) + 3);
  Alcotest.(check bool) "speedup clears the gate" true
    (rj.Churn.rj_speedup >= 5.0)

let suite =
  [
    Alcotest.test_case "quiet run with spares" `Quick test_quiet_run;
    Alcotest.test_case "fenced decommission flow" `Quick
      test_decommission_flow;
    Alcotest.test_case "campaign on one config" `Quick
      test_campaign_single_config;
    Alcotest.test_case "negative control leaks" `Quick
      test_negative_control_leaks;
    Alcotest.test_case "cold rejoin comparison" `Quick
      test_cold_rejoin_comparison;
  ]
