module Tree = Arbitrary.Tree
module Placement = Arbitrary.Placement
module Analysis = Arbitrary.Analysis

let fig1 = Tree.figure1 ()

(* Three reliable sites among eight flaky ones. *)
let p_mixed =
  [| 0.95; 0.95; 0.95; 0.6; 0.6; 0.6; 0.6; 0.6 |]

let test_identity_matches_per_site () =
  let a = Placement.identity fig1 in
  Alcotest.(check (float 1e-9)) "read availability"
    (Analysis.read_availability_per_site fig1 ~p:(fun i -> p_mixed.(i)))
    (Placement.availability_of fig1 ~p:p_mixed a Placement.Read_availability);
  Alcotest.(check (float 1e-9)) "write availability"
    (Analysis.write_availability_per_site fig1 ~p:(fun i -> p_mixed.(i)))
    (Placement.availability_of fig1 ~p:p_mixed a Placement.Write_availability)

let test_greedy_beats_worst_case () =
  (* Reverse placement: reliable sites on the big level. *)
  let reversed = [| 0.6; 0.6; 0.6; 0.6; 0.6; 0.95; 0.95; 0.95 |] in
  let greedy = Placement.greedy fig1 ~p:reversed Placement.Read_availability in
  let id = Placement.identity fig1 in
  let better =
    Placement.improvement fig1 ~p:reversed Placement.Read_availability
      ~worst:id ~best:greedy
  in
  Alcotest.(check bool) "greedy improves reads" true (better > 0.0)

let test_greedy_is_permutation () =
  let a = Placement.greedy fig1 ~p:p_mixed Placement.Read_availability in
  let sorted = Array.copy (a :> int array) in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 8 Fun.id) sorted

let test_write_greedy_concentrates () =
  let a = Placement.greedy fig1 ~p:p_mixed Placement.Write_availability in
  (* Positions 0..2 are the small level; for writes they must get all
     three 0.95 sites (one fully-reliable write quorum). *)
  for pos = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "position %d reliable" pos)
      true
      (p_mixed.((a :> int array).(pos)) > 0.9)
  done

let test_read_greedy_spreads () =
  let a = Placement.greedy fig1 ~p:p_mixed Placement.Read_availability in
  (* Reads want a reliable site on EVERY level: both levels must hold at
     least one 0.95 site. *)
  let reliable_in lo hi =
    let found = ref false in
    for pos = lo to hi do
      if p_mixed.((a :> int array).(pos)) > 0.9 then found := true
    done;
    !found
  in
  Alcotest.(check bool) "level 1 covered" true (reliable_in 0 2);
  Alcotest.(check bool) "level 2 covered" true (reliable_in 3 7);
  (* And the spread placement beats the concentrated one for reads. *)
  let concentrated = Placement.greedy fig1 ~p:p_mixed Placement.Write_availability in
  Alcotest.(check bool) "spread beats concentrate for reads" true
    (Placement.availability_of fig1 ~p:p_mixed a Placement.Read_availability
    > Placement.availability_of fig1 ~p:p_mixed concentrated
        Placement.Read_availability);
  (* Symmetrically, concentrate beats spread for writes. *)
  Alcotest.(check bool) "concentrate beats spread for writes" true
    (Placement.availability_of fig1 ~p:p_mixed concentrated
       Placement.Write_availability
    > Placement.availability_of fig1 ~p:p_mixed a Placement.Write_availability)

let test_exhaustive_at_least_greedy () =
  List.iter
    (fun objective ->
      let ex = Placement.exhaustive fig1 ~p:p_mixed objective in
      let gr = Placement.greedy fig1 ~p:p_mixed objective in
      Alcotest.(check bool) "exhaustive >= greedy" true
        (Placement.availability_of fig1 ~p:p_mixed ex objective
        >= Placement.availability_of fig1 ~p:p_mixed gr objective -. 1e-12))
    [
      Placement.Read_availability;
      Placement.Write_availability;
      Placement.Weighted 0.5;
    ]

let test_greedy_near_optimal_here () =
  (* On this instance the read-spread greedy achieves the exhaustive
     optimum. *)
  let ex = Placement.exhaustive fig1 ~p:p_mixed Placement.Read_availability in
  let gr = Placement.greedy fig1 ~p:p_mixed Placement.Read_availability in
  Alcotest.(check (float 1e-9)) "same availability"
    (Placement.availability_of fig1 ~p:p_mixed ex Placement.Read_availability)
    (Placement.availability_of fig1 ~p:p_mixed gr Placement.Read_availability)

let test_uniform_p_placement_irrelevant () =
  let uniform = Array.make 8 0.7 in
  let ex = Placement.exhaustive fig1 ~p:uniform Placement.Read_availability in
  let id = Placement.identity fig1 in
  Alcotest.(check (float 1e-12)) "no gain under uniform p" 0.0
    (Placement.improvement fig1 ~p:uniform Placement.Read_availability
       ~worst:id ~best:ex)

let test_validation () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Placement: availability array size differs from n")
    (fun () -> ignore (Placement.greedy fig1 ~p:[| 0.5 |] Placement.Read_availability));
  let big = Arbitrary.Config.mostly_read ~n:20 in
  Alcotest.check_raises "exhaustive too large"
    (Invalid_argument "Placement.exhaustive: n too large") (fun () ->
      ignore
        (Placement.exhaustive big ~p:(Array.make 20 0.5)
           Placement.Read_availability))

let suite =
  [
    Alcotest.test_case "identity matches per-site formulas" `Quick
      test_identity_matches_per_site;
    Alcotest.test_case "greedy beats reversed placement" `Quick
      test_greedy_beats_worst_case;
    Alcotest.test_case "greedy is a permutation" `Quick test_greedy_is_permutation;
    Alcotest.test_case "write greedy concentrates" `Quick
      test_write_greedy_concentrates;
    Alcotest.test_case "read greedy spreads" `Quick test_read_greedy_spreads;
    Alcotest.test_case "exhaustive >= greedy" `Quick test_exhaustive_at_least_greedy;
    Alcotest.test_case "read greedy optimal on figure 1" `Quick
      test_greedy_near_optimal_here;
    Alcotest.test_case "uniform p: placement irrelevant" `Quick
      test_uniform_p_placement_irrelevant;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
