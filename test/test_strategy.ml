module Quorum_set = Quorum.Quorum_set
module Strategy = Quorum.Strategy

let feq a b = abs_float (a -. b) < 1e-9

let majority3 = Quorum_set.of_lists ~universe:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]

let test_uniform_is_distribution () =
  let w = Strategy.uniform majority3 in
  Alcotest.(check bool) "valid" true (Strategy.is_distribution w)

let test_uniform_load_majority () =
  (* Each site is in 2 of 3 quorums -> load 2/3. *)
  let w = Strategy.uniform majority3 in
  Alcotest.(check bool) "site loads" true
    (Array.for_all (fun l -> feq l (2.0 /. 3.0))
       (Strategy.induced_site_loads majority3 w));
  Alcotest.(check bool) "system load" true
    (feq (Strategy.system_load majority3 w) (2.0 /. 3.0))

let test_skewed_strategy () =
  (* Put all weight on one quorum: its members carry load 1. *)
  let w = Strategy.of_weights [| 1.0; 0.0; 0.0 |] in
  let loads = Strategy.induced_site_loads majority3 w in
  Alcotest.(check bool) "members loaded" true (feq loads.(0) 1.0 && feq loads.(1) 1.0);
  Alcotest.(check bool) "non-member idle" true (feq loads.(2) 0.0);
  Alcotest.(check bool) "system load 1" true (feq (Strategy.system_load majority3 w) 1.0)

let test_of_weights_normalizes () =
  let w = Strategy.of_weights [| 2.0; 2.0; 4.0 |] in
  Alcotest.(check bool) "normalized" true (Strategy.is_distribution w);
  Alcotest.(check bool) "ratios kept" true (feq ((w :> float array)).(2) 0.5)

let test_of_weights_validation () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Strategy.of_weights: negative weight") (fun () ->
      ignore (Strategy.of_weights [| -1.0; 2.0 |]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Strategy.of_weights: zero total") (fun () ->
      ignore (Strategy.of_weights [| 0.0; 0.0 |]))

let test_expected_quorum_size () =
  let qs = Quorum_set.of_lists ~universe:4 [ [ 0 ]; [ 0; 1; 2; 3 ] ] in
  let w = Strategy.of_weights [| 3.0; 1.0 |] in
  (* 0.75*1 + 0.25*4 = 1.75 *)
  Alcotest.(check bool) "expected size" true
    (feq (Strategy.expected_quorum_size qs w) 1.75)

let test_arity_mismatch () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Strategy.induced_site_loads: arity mismatch") (fun () ->
      ignore (Strategy.induced_site_loads majority3 (Strategy.of_weights [| 1.0 |])))

let suite =
  [
    Alcotest.test_case "uniform is a distribution" `Quick test_uniform_is_distribution;
    Alcotest.test_case "uniform load on majority-3" `Quick test_uniform_load_majority;
    Alcotest.test_case "skewed strategy" `Quick test_skewed_strategy;
    Alcotest.test_case "of_weights normalizes" `Quick test_of_weights_normalizes;
    Alcotest.test_case "of_weights validation" `Quick test_of_weights_validation;
    Alcotest.test_case "expected quorum size" `Quick test_expected_quorum_size;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
  ]
