module Bitset = Dsutil.Bitset
module Rng = Dsutil.Rng
module Tree = Arbitrary.Tree
module Quorums = Arbitrary.Quorums
module Quorum_set = Quorum.Quorum_set
module Protocol = Quorum.Protocol

let fig1 = Tree.figure1 ()

let test_read_quorum_shape () =
  let rng = Rng.create 3 in
  let alive = Protocol.all_alive (Quorums.protocol fig1) in
  for _ = 1 to 50 do
    match Quorums.read_quorum fig1 ~alive ~rng with
    | None -> Alcotest.fail "failure-free read quorum must exist"
    | Some q ->
      Alcotest.(check int) "one per physical level" 2 (Bitset.cardinal q);
      let levels =
        List.map (Tree.level_of_replica fig1) (Bitset.elements q)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list int)) "covers K_phy" [ 1; 2 ] levels
  done

let test_write_quorum_shape () =
  let rng = Rng.create 5 in
  let alive = Protocol.all_alive (Quorums.protocol fig1) in
  for _ = 1 to 50 do
    match Quorums.write_quorum fig1 ~alive ~rng with
    | None -> Alcotest.fail "failure-free write quorum must exist"
    | Some q ->
      let size = Bitset.cardinal q in
      Alcotest.(check bool) "full level (3 or 5)" true (size = 3 || size = 5);
      let level = Tree.level_of_replica fig1 (List.hd (Bitset.elements q)) in
      Alcotest.(check (array int))
        "exactly that level's replicas"
        (Tree.replicas_at fig1 level)
        (Array.of_list (Bitset.elements q))
  done

let test_quorum_counts_facts () =
  (* Fact 3.2.1: m(R) = prod m_phy k = 15; Fact 3.2.2: m(W) = |K_phy| = 2. *)
  Alcotest.(check int) "m(R)" 15
    (List.length (List.of_seq (Quorums.enumerate_read_quorums fig1)));
  Alcotest.(check int) "m(W)" 2
    (List.length (List.of_seq (Quorums.enumerate_write_quorums fig1)))

let test_write_quorum_of_level () =
  let q = Quorums.write_quorum_of_level fig1 ~level:1 in
  Alcotest.(check (list int)) "level 1" [ 0; 1; 2 ] (Bitset.elements q);
  Alcotest.check_raises "logical level rejected"
    (Invalid_argument "Quorums.write_quorum_of_level: logical level") (fun () ->
      ignore (Quorums.write_quorum_of_level fig1 ~level:0))

let test_read_blocked_by_dead_level () =
  let rng = Rng.create 7 in
  (* Kill all of level 1: reads must fail, writes can still use level 2. *)
  let alive = Bitset.of_list 8 [ 3; 4; 5; 6; 7 ] in
  Alcotest.(check bool) "read blocked" true
    (Quorums.read_quorum fig1 ~alive ~rng = None);
  Alcotest.(check bool) "write ok via level 2" true
    (Quorums.write_quorum fig1 ~alive ~rng <> None)

let test_write_blocked_without_full_level () =
  let rng = Rng.create 9 in
  (* One dead replica in each level: writes fail, reads survive. *)
  let alive = Bitset.of_list 8 [ 1; 2; 4; 5; 6; 7 ] in
  Alcotest.(check bool) "write blocked" true
    (Quorums.write_quorum fig1 ~alive ~rng = None);
  Alcotest.(check bool) "read ok" true (Quorums.read_quorum fig1 ~alive ~rng <> None)

let test_first_alive_policy_deterministic () =
  let rng = Rng.create 11 in
  let alive = Protocol.all_alive (Quorums.protocol fig1) in
  let q1 = Quorums.read_quorum ~policy:Quorums.First_alive fig1 ~alive ~rng in
  let q2 = Quorums.read_quorum ~policy:Quorums.First_alive fig1 ~alive ~rng in
  (match (q1, q2) with
  | Some a, Some b -> Alcotest.(check bool) "deterministic" true (Bitset.equal a b)
  | _ -> Alcotest.fail "quorums must exist");
  match Quorums.write_quorum ~policy:Quorums.First_alive fig1 ~alive ~rng with
  | Some q ->
    Alcotest.(check (list int)) "shallowest level" [ 0; 1; 2 ] (Bitset.elements q)
  | None -> Alcotest.fail "write quorum must exist"

(* --- the paper's bicoterie theorem, property-tested over random trees --- *)

let tree_gen =
  QCheck.Gen.(
    let level = int_range 1 5 in
    let* n_levels = int_range 1 4 in
    let* sizes = list_repeat n_levels level in
    let* logical_root = bool in
    return
      (Tree.create
         ((if logical_root then [ (0, 1) ] else [])
         @ List.map (fun s -> (s, 0)) sizes)))

let arb_tree =
  QCheck.make tree_gen ~print:(fun t -> Tree.to_spec t)

let prop_bicoterie =
  QCheck.Test.make ~name:"read/write quorums form a bicoterie (any tree)"
    ~count:100 arb_tree (fun tree ->
      let reads = List.of_seq (Quorums.enumerate_read_quorums tree) in
      let writes = List.of_seq (Quorums.enumerate_write_quorums tree) in
      List.for_all
        (fun r -> List.for_all (fun w -> Bitset.intersects r w) writes)
        reads)

let prop_quorum_counts =
  QCheck.Test.make ~name:"Facts 3.2.1/3.2.2: m(R) and m(W)" ~count:100 arb_tree
    (fun tree ->
      let m_r = List.length (List.of_seq (Quorums.enumerate_read_quorums tree)) in
      let m_w = List.length (List.of_seq (Quorums.enumerate_write_quorums tree)) in
      float_of_int m_r = Arbitrary.Analysis.num_read_quorums tree
      && m_w = Arbitrary.Analysis.num_write_quorums tree)

let prop_assembly_complete =
  QCheck.Test.make
    ~name:"assembly returns a quorum iff one survives (any tree, any pattern)"
    ~count:100
    (QCheck.pair arb_tree QCheck.(int_bound 1000))
    (fun (tree, seed) ->
      let rng = Rng.create seed in
      let n = Tree.n tree in
      let alive = Quorum.Availability.random_alive rng ~n ~p:0.6 in
      let reads = Quorum_set.create ~universe:n
          (List.of_seq (Quorums.enumerate_read_quorums tree)) in
      let writes = Quorum_set.create ~universe:n
          (List.of_seq (Quorums.enumerate_write_quorums tree)) in
      let read_ok = Quorums.read_quorum tree ~alive ~rng <> None in
      let write_ok = Quorums.write_quorum tree ~alive ~rng <> None in
      read_ok = Quorum_set.can_form_within reads ~alive
      && write_ok = Quorum_set.can_form_within writes ~alive)

let suite =
  [
    Alcotest.test_case "read quorum shape" `Quick test_read_quorum_shape;
    Alcotest.test_case "write quorum shape" `Quick test_write_quorum_shape;
    Alcotest.test_case "quorum counts (Facts 3.2.1/3.2.2)" `Quick
      test_quorum_counts_facts;
    Alcotest.test_case "write_quorum_of_level" `Quick test_write_quorum_of_level;
    Alcotest.test_case "dead level blocks reads only" `Quick
      test_read_blocked_by_dead_level;
    Alcotest.test_case "no full level blocks writes only" `Quick
      test_write_blocked_without_full_level;
    Alcotest.test_case "first-alive policy" `Quick
      test_first_alive_policy_deterministic;
    QCheck_alcotest.to_alcotest prop_bicoterie;
    QCheck_alcotest.to_alcotest prop_quorum_counts;
    QCheck_alcotest.to_alcotest prop_assembly_complete;
  ]
