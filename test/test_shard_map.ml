(* Shard-map determinism and well-formedness: same seed + key set give
   identical assignments on every run; split/merge keep every key owned
   by exactly one active shard, with no gaps in range mode. *)

module Shard_map = Arbitrary.Shard_map
module Parallel = Eval.Parallel

let make ?(strategy = Shard_map.Hash) ?(shards = 4) ?(key_space = 256)
    ?(seed = 42) () =
  Shard_map.create ~strategy ~shards ~key_space ~seed ()

let test_deterministic_assignment () =
  let a = make () and b = make () in
  Alcotest.(check (array int)) "same seed, same owner table"
    (Shard_map.snapshot a) (Shard_map.snapshot b);
  let c = make ~seed:43 () in
  Alcotest.(check bool) "different seed, different table" true
    (Shard_map.snapshot a <> Shard_map.snapshot c)

let test_deterministic_across_domains () =
  (* Routing computed concurrently in worker domains must match the
     sequential assignment: the map is a pure function of its inputs. *)
  let reference =
    Array.init 256 (fun k -> Shard_map.route (make ()) k)
  in
  let per_domain =
    Parallel.map ~domains:4
      (fun _ -> Array.init 256 (fun k -> Shard_map.route (make ()) k))
      [ 0; 1; 2; 3 ]
  in
  List.iter
    (fun arr ->
      Alcotest.(check (array int)) "domain sees identical routing" reference arr)
    per_domain

let test_hash_covers_all_shards () =
  let m = make () in
  let counts = Shard_map.counts m in
  Array.iter
    (fun c -> Alcotest.(check bool) "every shard owns keys" true (c > 0))
    counts;
  Alcotest.(check int) "counts sum to key space" 256
    (Array.fold_left ( + ) 0 counts)

let test_range_blocks_contiguous () =
  let m = make ~strategy:Shard_map.Range ~shards:3 ~key_space:10 () in
  Alcotest.(check (list int)) "shard 0 takes the remainder" [ 0; 1; 2; 3 ]
    (Shard_map.keys_of m 0);
  Alcotest.(check (list int)) "shard 1 next block" [ 4; 5; 6 ] (Shard_map.keys_of m 1);
  Alcotest.(check (list int)) "shard 2 last block" [ 7; 8; 9 ] (Shard_map.keys_of m 2);
  Alcotest.(check bool) "well formed" true (Shard_map.well_formed m)

let well_formed_every_key_once m =
  Shard_map.well_formed m
  && Array.for_all
       (fun s -> Shard_map.is_active m s)
       (Shard_map.snapshot m)

let test_split_well_formed () =
  List.iter
    (fun strategy ->
      let m = make ~strategy ~shards:4 ~key_space:101 () in
      let change = Shard_map.plan_split m ~shard:2 in
      Alcotest.(check int) "fresh id allocated" 4 change.Shard_map.target;
      (* Routing untouched until commit. *)
      List.iter
        (fun k ->
          Alcotest.(check int) "moved key still at source pre-commit" 2
            (Shard_map.route m k))
        change.Shard_map.moved;
      Shard_map.commit m change;
      Alcotest.(check bool) "well formed after split" true
        (well_formed_every_key_once m);
      List.iter
        (fun k ->
          Alcotest.(check int) "moved key at target post-commit" 4
            (Shard_map.route m k))
        change.Shard_map.moved;
      (* Roughly half moved. *)
      let c = Shard_map.counts m in
      Alcotest.(check bool) "split halves the shard" true
        (abs (c.(2) - c.(4)) <= 1))
    [ Shard_map.Hash; Shard_map.Range ]

let test_merge_well_formed () =
  let m = make ~strategy:Shard_map.Range ~shards:4 ~key_space:64 () in
  let change = Shard_map.plan_merge m ~into:1 ~from_:2 in
  Shard_map.commit m change;
  Alcotest.(check bool) "well formed after merge" true (well_formed_every_key_once m);
  Alcotest.(check bool) "source inactive" false (Shard_map.is_active m 2);
  Alcotest.(check int) "target owns both ranges" 32 (Shard_map.counts m).(1);
  Alcotest.(check (list int)) "active shards" [ 0; 1; 3 ] (Shard_map.active m)

let test_range_merge_requires_adjacency () =
  let m = make ~strategy:Shard_map.Range ~shards:4 ~key_space:64 () in
  Alcotest.check_raises "non-adjacent range merge rejected"
    (Invalid_argument "Shard_map.plan_merge: ranges not adjacent")
    (fun () -> ignore (Shard_map.plan_merge m ~into:0 ~from_:2))

let test_hash_merge_any_pair () =
  let m = make ~strategy:Shard_map.Hash ~shards:4 ~key_space:64 () in
  let change = Shard_map.plan_merge m ~into:0 ~from_:3 in
  Shard_map.commit m change;
  Alcotest.(check bool) "hash merge of any pair is fine" true
    (well_formed_every_key_once m)

let test_split_then_merge_back () =
  let m = make ~strategy:Shard_map.Range ~shards:2 ~key_space:20 () in
  let split = Shard_map.plan_split m ~shard:0 in
  Shard_map.commit m split;
  let merge = Shard_map.plan_merge m ~into:0 ~from_:split.Shard_map.target in
  Shard_map.commit m merge;
  Alcotest.(check bool) "well formed after round trip" true
    (well_formed_every_key_once m);
  Alcotest.(check int) "shard 0 owns its original block again" 10
    (Shard_map.counts m).(0)

let test_stale_plan_rejected () =
  let m = make ~shards:4 ~key_space:64 () in
  let a = Shard_map.plan_split m ~shard:0 in
  let b = Shard_map.plan_split m ~shard:0 in
  Shard_map.commit m a;
  Alcotest.check_raises "overlapping plan rejected"
    (Invalid_argument "Shard_map.commit: stale plan (key no longer at source)")
    (fun () -> Shard_map.commit m b)

let test_route_bounds () =
  let m = make ~key_space:8 () in
  Alcotest.check_raises "key out of range"
    (Invalid_argument "Shard_map.route: key out of range")
    (fun () -> ignore (Shard_map.route m 8))

let suite =
  [
    Alcotest.test_case "deterministic assignment per seed" `Quick
      test_deterministic_assignment;
    Alcotest.test_case "identical across domain counts" `Quick
      test_deterministic_across_domains;
    Alcotest.test_case "hash covers all shards" `Quick test_hash_covers_all_shards;
    Alcotest.test_case "range blocks contiguous" `Quick test_range_blocks_contiguous;
    Alcotest.test_case "split keeps map well-formed" `Quick test_split_well_formed;
    Alcotest.test_case "merge keeps map well-formed" `Quick test_merge_well_formed;
    Alcotest.test_case "range merge requires adjacency" `Quick
      test_range_merge_requires_adjacency;
    Alcotest.test_case "hash merge of any pair" `Quick test_hash_merge_any_pair;
    Alcotest.test_case "split then merge back" `Quick test_split_then_merge_back;
    Alcotest.test_case "stale overlapping plan rejected" `Quick
      test_stale_plan_rejected;
    Alcotest.test_case "route bounds checked" `Quick test_route_bounds;
  ]
