module Engine = Dsim.Engine
module Network = Dsim.Network
module Replica = Replication.Replica
module Coordinator = Replication.Coordinator
module Lock_manager = Replication.Lock_manager
module Quorum_rpc = Replication.Quorum_rpc
module Reconfig = Replication.Reconfig
module Timestamp = Replication.Timestamp

(* Old geometry: the Figure-1 tree (levels {0,1,2} and {3..7}).  New
   geometry over the same 8 replicas: 1-2-2-4 (levels {0,1}, {2,3},
   {4,5,6,7}). *)
let old_tree = Arbitrary.Tree.figure1 ()
let new_tree = Arbitrary.Tree.of_spec "1-2-2-4"

type ctx = {
  engine : Engine.t;
  net : Replication.Message.t Network.t;
  locks : Lock_manager.t;
  coord : Coordinator.t;  (* client on site 8 *)
  rpc : Quorum_rpc.t;  (* reconfigurator on site 9 *)
}

let setup ?(seed = 42) () =
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n:10 () in
  let _replicas = Array.init 8 (fun site -> Replica.create ~site ~net ()) in
  let locks = Lock_manager.create ~engine in
  let coord =
    Coordinator.create ~site:8 ~net
      ~proto:(Arbitrary.Quorums.protocol old_tree)
      ~locks ()
  in
  let rpc =
    Quorum_rpc.create ~site:9 ~net ~proto:(Arbitrary.Quorums.protocol old_tree) ()
  in
  { engine; net; locks; coord; rpc }

let write_sync ctx key value =
  let r = ref None in
  Coordinator.write ctx.coord ~key ~value (fun x -> r := x);
  Engine.run ctx.engine;
  match !r with Some ts -> ts | None -> Alcotest.fail "write failed"

let read_sync ctx key =
  let r = ref `Pending in
  Coordinator.read ctx.coord ~key (fun x -> r := `Done x);
  Engine.run ctx.engine;
  match !r with
  | `Done (Some result) -> result
  | `Done None -> Alcotest.fail "read failed"
  | `Pending -> Alcotest.fail "read did not complete"

let migrate_sync ?(key_space = 4) ctx =
  let result = ref None in
  Reconfig.migrate ~rpc:ctx.rpc ~locks:ctx.locks
    ~new_proto:(Arbitrary.Quorums.protocol new_tree) ~key_space
    ~on_switch:(fun () ->
      Coordinator.set_protocol ctx.coord (Arbitrary.Quorums.protocol new_tree))
    (fun r -> result := Some r);
  Engine.run ctx.engine;
  match !result with Some r -> r | None -> Alcotest.fail "migration incomplete"

let test_values_survive_migration () =
  let ctx = setup () in
  let ts1 = write_sync ctx 0 "zero" in
  let _ = write_sync ctx 1 "one" in
  let r = migrate_sync ctx in
  Alcotest.(check int) "all keys migrated" 4 r.Reconfig.migrated;
  Alcotest.(check (list int)) "no failures" [] r.Reconfig.failed;
  (* Reads now run under the new geometry and must see the old values with
     their original timestamps (no version minting). *)
  let r0 = read_sync ctx 0 in
  Alcotest.(check string) "value kept" "zero" r0.Coordinator.value;
  Alcotest.(check bool) "timestamp preserved" true
    (Timestamp.equal r0.Coordinator.ts ts1);
  Alcotest.(check string) "other key kept" "one" (read_sync ctx 1).Coordinator.value

let test_fresh_keys_migrate_trivially () =
  let ctx = setup () in
  let r = migrate_sync ctx in
  Alcotest.(check int) "all (empty) keys fine" 4 r.Reconfig.migrated;
  Alcotest.(check string) "still empty" "" (read_sync ctx 2).Coordinator.value

let test_writes_after_migration_use_new_tree () =
  let ctx = setup () in
  ignore (migrate_sync ctx);
  ignore (write_sync ctx 3 "post");
  (* Under the new tree, a write quorum is one of the levels {0,1}, {2,3}
     or {4,5,6,7}; verify by reading through the new geometry. *)
  Alcotest.(check string) "readable" "post" (read_sync ctx 3).Coordinator.value;
  (* And old-shape assumptions are gone: crashing 3 replicas of the old
     big level (5 of them) cannot block new reads needing 3 levels... but
     crashing one per new level blocks new writes. *)
  List.iter (Network.crash ctx.net) [ 0; 2; 4 ];
  let failed = ref false in
  Coordinator.write ctx.coord ~key:3 ~value:"blocked" (fun r ->
      failed := r = None);
  Engine.run ctx.engine;
  Alcotest.(check bool) "write blocked per new geometry" true !failed

let test_client_blocked_during_migration () =
  let ctx = setup () in
  ignore (write_sync ctx 0 "before");
  (* Start the migration, then immediately issue a client write: it must
     wait for the locks and complete after the switch, on the new tree. *)
  let mig_done = ref false in
  Reconfig.migrate ~rpc:ctx.rpc ~locks:ctx.locks
    ~new_proto:(Arbitrary.Quorums.protocol new_tree) ~key_space:4
    ~on_switch:(fun () ->
      Coordinator.set_protocol ctx.coord (Arbitrary.Quorums.protocol new_tree))
    (fun _ -> mig_done := true);
  let write_done = ref None in
  Coordinator.write ctx.coord ~key:0 ~value:"after" (fun r -> write_done := r);
  Engine.run ctx.engine;
  Alcotest.(check bool) "migration finished" true !mig_done;
  (match !write_done with
  | Some ts -> Alcotest.(check int) "version continues from old history" 2
      ts.Timestamp.version
  | None -> Alcotest.fail "client write failed");
  Alcotest.(check string) "final value" "after" (read_sync ctx 0).Coordinator.value

let test_failed_transfer_reported () =
  let ctx = setup () in
  ignore (write_sync ctx 0 "doomed?");
  (* One crash in every *new* level blocks new-tree write quorums while
     old-tree reads survive: the written key cannot transfer. *)
  List.iter (Network.crash ctx.net) [ 0; 2; 4 ];
  let r = migrate_sync ctx in
  Alcotest.(check (list int)) "key 0 failed" [ 0 ] r.Reconfig.failed;
  Alcotest.(check int) "others migrated" 3 r.Reconfig.migrated

let test_quorum_rpc_forced_ts () =
  (* The state-transfer primitive: a forced timestamp is installed as-is
     and does not bump versions. *)
  let ctx = setup () in
  let done_ = ref None in
  let ts = Timestamp.make ~version:7 ~sid:1 in
  Quorum_rpc.write ctx.rpc ~key:5 ~ts ~value:"forced" (fun r -> done_ := r);
  Engine.run ctx.engine;
  (match !done_ with
  | Some ts' -> Alcotest.(check bool) "echoes forced ts" true (Timestamp.equal ts ts')
  | None -> Alcotest.fail "forced write failed");
  let r = read_sync ctx 5 in
  Alcotest.(check bool) "read sees forced ts" true
    (Timestamp.equal r.Coordinator.ts ts)

let test_chained_migrations () =
  (* A -> B -> back to A: values and timestamps survive both hops. *)
  let ctx = setup () in
  let ts0 = write_sync ctx 0 "v" in
  let hop target =
    let result = ref None in
    Reconfig.migrate ~rpc:ctx.rpc ~locks:ctx.locks
      ~new_proto:(Arbitrary.Quorums.protocol target) ~key_space:4
      ~on_switch:(fun () ->
        Coordinator.set_protocol ctx.coord (Arbitrary.Quorums.protocol target))
      (fun r -> result := Some r);
    Engine.run ctx.engine;
    match !result with
    | Some r -> Alcotest.(check (list int)) "no failures" [] r.Reconfig.failed
    | None -> Alcotest.fail "migration incomplete"
  in
  hop new_tree;
  hop old_tree;
  let r = read_sync ctx 0 in
  Alcotest.(check string) "value after two hops" "v" r.Coordinator.value;
  Alcotest.(check bool) "timestamp preserved" true
    (Timestamp.equal r.Coordinator.ts ts0)

let suite =
  [
    Alcotest.test_case "values survive migration" `Quick
      test_values_survive_migration;
    Alcotest.test_case "fresh keys migrate trivially" `Quick
      test_fresh_keys_migrate_trivially;
    Alcotest.test_case "writes after migration use the new tree" `Quick
      test_writes_after_migration_use_new_tree;
    Alcotest.test_case "client blocked during migration" `Quick
      test_client_blocked_during_migration;
    Alcotest.test_case "failed transfers reported" `Quick
      test_failed_transfer_reported;
    Alcotest.test_case "quorum_rpc forced timestamp" `Quick
      test_quorum_rpc_forced_ts;
    Alcotest.test_case "chained migrations" `Quick test_chained_migrations;
  ]
