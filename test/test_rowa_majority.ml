module Rowa = Quorum.Rowa
module Majority = Quorum.Majority
module Availability = Quorum.Availability
module Rng = Dsutil.Rng

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_rowa_costs_loads () =
  let r = Rowa.create ~n:7 in
  Alcotest.(check int) "read cost" 1 (Rowa.read_cost r);
  Alcotest.(check int) "write cost" 7 (Rowa.write_cost r);
  Alcotest.(check bool) "read load" true (feq (Rowa.read_load r) (1.0 /. 7.0));
  Alcotest.(check bool) "write load" true (feq (Rowa.write_load r) 1.0)

let test_rowa_availability_formulas () =
  let r = Rowa.create ~n:4 in
  let p = 0.8 in
  Alcotest.(check bool) "read formula" true
    (feq (Rowa.read_availability r ~p) (1.0 -. (0.2 ** 4.0)));
  Alcotest.(check bool) "write formula" true
    (feq (Rowa.write_availability r ~p) (0.8 ** 4.0))

let test_rowa_availability_exact () =
  (* The closed forms must equal exhaustive enumeration over up/down
     patterns, with the protocol's own assembly as the oracle. *)
  let r = Rowa.create ~n:6 in
  let proto = Rowa.protocol r in
  let rng = Rng.create 3 in
  let p = 0.7 in
  let exact_read =
    Availability.exact ~n:6 ~p (fun ~alive ->
        Quorum.Protocol.read_quorum proto ~alive ~rng <> None)
  in
  let exact_write =
    Availability.exact ~n:6 ~p (fun ~alive ->
        Quorum.Protocol.write_quorum proto ~alive ~rng <> None)
  in
  Alcotest.(check bool) "read exact" true
    (feq ~eps:1e-9 exact_read (Rowa.read_availability r ~p));
  Alcotest.(check bool) "write exact" true
    (feq ~eps:1e-9 exact_write (Rowa.write_availability r ~p))

let test_rowa_write_needs_all () =
  let r = Rowa.create ~n:3 in
  let rng = Rng.create 1 in
  let alive = Dsutil.Bitset.of_list 3 [ 0; 1 ] in
  Alcotest.(check bool) "write blocked by one crash" true
    (Rowa.write_quorum r ~alive ~rng = None);
  Alcotest.(check bool) "read survives" true
    (Rowa.read_quorum r ~alive ~rng <> None)

let test_majority_sizes () =
  List.iter
    (fun (n, q) ->
      Alcotest.(check int)
        (Printf.sprintf "majority of %d" n)
        q
        (Majority.quorum_size (Majority.create ~n)))
    [ (1, 1); (2, 2); (3, 2); (5, 3); (7, 4); (100, 51) ]

let test_majority_load () =
  let m = Majority.create ~n:5 in
  Alcotest.(check bool) "load 3/5" true (feq (Majority.load m) 0.6)

let test_majority_availability_exact () =
  let m = Majority.create ~n:7 in
  let proto = Majority.protocol m in
  let rng = Rng.create 5 in
  let p = 0.6 in
  let exact =
    Availability.exact ~n:7 ~p (fun ~alive ->
        Quorum.Protocol.read_quorum proto ~alive ~rng <> None)
  in
  Alcotest.(check bool) "binomial tail matches enumeration" true
    (feq ~eps:1e-9 exact (Majority.availability m ~p))

let test_majority_beats_rowa_write_availability () =
  (* Majority tolerates minority crashes; ROWA writes do not. *)
  let p = 0.9 and n = 9 in
  Alcotest.(check bool) "majority > rowa for writes" true
    (Majority.availability (Majority.create ~n) ~p
    > Rowa.write_availability (Rowa.create ~n) ~p)

let test_enumeration_counts () =
  let m = Majority.create ~n:5 in
  Alcotest.(check int) "C(5,3) quorums" 10
    (List.length (List.of_seq (Majority.enumerate_read_quorums m)));
  let r = Rowa.create ~n:5 in
  Alcotest.(check int) "5 singleton reads" 5
    (List.length (List.of_seq (Rowa.enumerate_read_quorums r)));
  Alcotest.(check int) "1 write quorum" 1
    (List.length (List.of_seq (Rowa.enumerate_write_quorums r)))

let suite =
  [
    Alcotest.test_case "ROWA costs and loads" `Quick test_rowa_costs_loads;
    Alcotest.test_case "ROWA availability formulas" `Quick
      test_rowa_availability_formulas;
    Alcotest.test_case "ROWA availability vs enumeration" `Quick
      test_rowa_availability_exact;
    Alcotest.test_case "ROWA write needs all replicas" `Quick
      test_rowa_write_needs_all;
    Alcotest.test_case "Majority quorum sizes" `Quick test_majority_sizes;
    Alcotest.test_case "Majority load" `Quick test_majority_load;
    Alcotest.test_case "Majority availability vs enumeration" `Quick
      test_majority_availability_exact;
    Alcotest.test_case "Majority beats ROWA write availability" `Quick
      test_majority_beats_rowa_write_availability;
    Alcotest.test_case "enumeration counts" `Quick test_enumeration_counts;
  ]
