module Engine = Dsim.Engine
module Network = Dsim.Network

let build ?(proto = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ()))
    ?(n_clients = 3) ?(seed = 42) () =
  let n = Quorum.Protocol.universe_size proto in
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~n:(n + n_clients) ~fifo:true () in
  let _arbiters = Array.init n (fun site -> Qmutex.create_arbiter ~site ~net) in
  let clients =
    Array.init n_clients (fun i ->
        Qmutex.create_client ~site:(n + i) ~net ~proto ())
  in
  (engine, net, clients)

let test_single_client_acquire_release () =
  let engine, _, clients = build ~n_clients:1 () in
  let entered = ref false in
  Qmutex.acquire clients.(0) (fun () -> entered := true);
  Engine.run engine;
  Alcotest.(check bool) "entered" true !entered;
  Alcotest.(check bool) "holding" true (Qmutex.holding clients.(0));
  Qmutex.release clients.(0);
  Alcotest.(check bool) "released" false (Qmutex.holding clients.(0));
  Alcotest.(check int) "one acquisition" 1 (Qmutex.acquisitions clients.(0))

let test_reacquire () =
  let engine, _, clients = build ~n_clients:1 () in
  let rec cycle i =
    if i < 5 then
      Qmutex.acquire clients.(0) (fun () ->
          Qmutex.release clients.(0);
          cycle (i + 1))
  in
  cycle 0;
  Engine.run engine;
  Alcotest.(check int) "five acquisitions" 5 (Qmutex.acquisitions clients.(0))

(* The core safety property: never two clients in the critical section. *)
let contention_run ~proto ~n_clients ~rounds ~seed =
  let engine, _, clients = build ~proto ~n_clients ~seed () in
  let in_cs = ref 0 in
  let max_in_cs = ref 0 in
  let total = ref 0 in
  Array.iter
    (fun c ->
      let rec cycle i =
        if i < rounds then
          Qmutex.acquire c (fun () ->
              incr in_cs;
              incr total;
              if !in_cs > !max_in_cs then max_in_cs := !in_cs;
              (* Stay in the CS for a while before leaving. *)
              Engine.schedule engine ~delay:2.0 (fun () ->
                  decr in_cs;
                  Qmutex.release c;
                  Engine.schedule engine ~delay:1.0 (fun () -> cycle (i + 1))))
      in
      cycle 0)
    clients;
  Engine.run engine;
  (!max_in_cs, !total)

let test_mutual_exclusion_under_contention () =
  let proto = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ()) in
  List.iter
    (fun seed ->
      let max_in_cs, total = contention_run ~proto ~n_clients:4 ~rounds:10 ~seed in
      Alcotest.(check int)
        (Printf.sprintf "never two in CS (seed %d)" seed)
        1 max_in_cs;
      Alcotest.(check int) "all entries happened (liveness)" 40 total)
    [ 1; 2; 3 ]

let test_mutual_exclusion_other_protocols () =
  List.iter
    (fun (name, proto) ->
      let max_in_cs, total = contention_run ~proto ~n_clients:3 ~rounds:8 ~seed:7 in
      Alcotest.(check int) (name ^ ": exclusion") 1 max_in_cs;
      Alcotest.(check int) (name ^ ": liveness") 24 total)
    [
      ("majority", Quorum.Majority.protocol (Quorum.Majority.create ~n:5));
      ("maekawa", Quorum.Maekawa.protocol (Quorum.Maekawa.create ~k:3));
      ("tree-quorum", Quorum.Tree_quorum.protocol (Quorum.Tree_quorum.create ~height:2));
      ("grid", Quorum.Grid.protocol (Quorum.Grid.create ~rows:3 ~cols:3));
    ]

let test_yields_happen_under_contention () =
  (* With many clients on few arbiters, some inquire/yield traffic is
     expected — the deadlock-avoidance path actually runs. *)
  let proto = Arbitrary.Quorums.protocol (Arbitrary.Tree.of_spec "1-2-2") in
  let engine, _, clients = build ~proto ~n_clients:5 ~seed:3 () in
  let remaining = ref 25 in
  Array.iter
    (fun c ->
      let rec cycle i =
        if i < 5 then
          Qmutex.acquire c (fun () ->
              decr remaining;
              Engine.schedule engine ~delay:0.5 (fun () ->
                  Qmutex.release c;
                  cycle (i + 1)))
      in
      cycle 0)
    clients;
  Engine.run engine;
  Alcotest.(check int) "all done" 0 !remaining

let test_exclusion_with_random_latency () =
  (* Exponential latencies reorder messages between different pairs; the
     per-pair FIFO guarantee is all the algorithm needs. *)
  let proto = Arbitrary.Quorums.protocol (Arbitrary.Tree.figure1 ()) in
  List.iter
    (fun seed ->
      let engine = Engine.create ~seed () in
      let net =
        Network.create ~engine ~n:12 ~fifo:true
          ~latency:(Dsim.Latency.Exponential 2.0) ()
      in
      let _arbiters = Array.init 8 (fun site -> Qmutex.create_arbiter ~site ~net) in
      let clients =
        Array.init 4 (fun i -> Qmutex.create_client ~site:(8 + i) ~net ~proto ())
      in
      let in_cs = ref 0 and violations = ref 0 and total = ref 0 in
      Array.iter
        (fun c ->
          let rec cycle i =
            if i < 6 then
              Qmutex.acquire c (fun () ->
                  incr in_cs;
                  incr total;
                  if !in_cs > 1 then incr violations;
                  Engine.schedule engine ~delay:1.5 (fun () ->
                      decr in_cs;
                      Qmutex.release c;
                      cycle (i + 1)))
          in
          cycle 0)
        clients;
      Engine.run engine;
      Alcotest.(check int) (Printf.sprintf "no violations (seed %d)" seed) 0 !violations;
      Alcotest.(check int) "liveness" 24 !total)
    [ 11; 22; 33; 44; 55 ]

let test_api_misuse () =
  let engine, _, clients = build ~n_clients:1 () in
  Qmutex.acquire clients.(0) (fun () -> ());
  Alcotest.check_raises "double acquire"
    (Invalid_argument "Qmutex.acquire: already held or pending") (fun () ->
      Qmutex.acquire clients.(0) (fun () -> ()));
  Alcotest.check_raises "release before held"
    (Invalid_argument "Qmutex.release: not held") (fun () ->
      Qmutex.release clients.(0));
  Engine.run engine;
  Qmutex.release clients.(0)

let suite =
  [
    Alcotest.test_case "acquire/release" `Quick test_single_client_acquire_release;
    Alcotest.test_case "reacquire" `Quick test_reacquire;
    Alcotest.test_case "mutual exclusion under contention" `Quick
      test_mutual_exclusion_under_contention;
    Alcotest.test_case "exclusion with baseline protocols" `Quick
      test_mutual_exclusion_other_protocols;
    Alcotest.test_case "yields under heavy contention" `Quick
      test_yields_happen_under_contention;
    Alcotest.test_case "exclusion with random latency" `Quick
      test_exclusion_with_random_latency;
    Alcotest.test_case "API misuse" `Quick test_api_misuse;
  ]
