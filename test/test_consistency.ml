module Span = Obs.Span
module Consistency = Eval.Consistency

(* Spans are transparent records, so the checker can be fed synthetic
   traces with exactly the overlap structure under test. *)
let span ?result_ts ?(outcome = Span.Ok) ~id ~op ~key ~started ~ended () =
  {
    Span.id;
    op;
    site = 100;
    key = Some key;
    started;
    attempts = 1;
    backoff_total = 0.0;
    rev_phases = [];
    ended = Some ended;
    outcome = Some outcome;
    result_ts;
  }

let write ~id ~key ~started ~ended ~version =
  span ~id ~op:"write" ~key ~started ~ended ~result_ts:(version, 0) ()

let read ~id ~key ~started ~ended ~version =
  span ~id ~op:"read" ~key ~started ~ended ~result_ts:(version, 0) ()

let test_fresh_read_ok () =
  let r =
    Consistency.check
      [
        write ~id:1 ~key:0 ~started:0.0 ~ended:10.0 ~version:1;
        read ~id:2 ~key:0 ~started:20.0 ~ended:25.0 ~version:1;
      ]
  in
  Alcotest.(check bool) "ok" true (Consistency.ok r);
  Alcotest.(check int) "reads" 1 r.Consistency.reads_checked;
  Alcotest.(check int) "writes" 1 r.Consistency.writes_indexed

let test_stale_read_flagged () =
  let r =
    Consistency.check
      [
        write ~id:1 ~key:0 ~started:0.0 ~ended:10.0 ~version:1;
        read ~id:2 ~key:0 ~started:20.0 ~ended:25.0 ~version:0;
      ]
  in
  Alcotest.(check int) "one violation" 1 (List.length r.Consistency.violations);
  let v = List.hd r.Consistency.violations in
  Alcotest.(check int) "names the read" 2 v.Consistency.read_id;
  Alcotest.(check int) "names the write" 1 v.Consistency.write_id;
  Alcotest.(check int) "required version" 1
    v.Consistency.required.Replication.Timestamp.version

(* A write still in flight when the read starts does not constrain it:
   regularity allows either the old or the new value. *)
let test_concurrent_write_unconstraining () =
  let r =
    Consistency.check
      [
        write ~id:1 ~key:0 ~started:0.0 ~ended:5.0 ~version:1;
        write ~id:3 ~key:0 ~started:15.0 ~ended:30.0 ~version:2;
        read ~id:2 ~key:0 ~started:20.0 ~ended:25.0 ~version:1;
      ]
  in
  Alcotest.(check bool) "old value legal under overlap" true
    (Consistency.ok r)

(* Ties are ambiguous: a write that ends at the very instant the read
   starts happened "simultaneously" in virtual time, so it must not
   constrain the read (strictly-before only). *)
let test_tie_not_constraining () =
  let r =
    Consistency.check
      [
        write ~id:1 ~key:0 ~started:0.0 ~ended:20.0 ~version:1;
        read ~id:2 ~key:0 ~started:20.0 ~ended:25.0 ~version:0;
      ]
  in
  Alcotest.(check bool) "simultaneous completion does not bind" true
    (Consistency.ok r)

let test_unstamped_skipped () =
  let r =
    Consistency.check
      [
        write ~id:1 ~key:0 ~started:0.0 ~ended:10.0 ~version:1;
        span ~id:2 ~op:"read" ~key:0 ~started:20.0 ~ended:25.0 ();
      ]
  in
  Alcotest.(check int) "unstamped counted" 1 r.Consistency.unstamped;
  Alcotest.(check int) "not checked" 0 r.Consistency.reads_checked;
  Alcotest.(check bool) "no violation invented" true (Consistency.ok r)

let test_failed_write_not_indexed () =
  let r =
    Consistency.check
      [
        span
          ~outcome:(Span.Failed "timeout")
          ~result_ts:(1, 0) ~id:1 ~op:"write" ~key:0 ~started:0.0 ~ended:10.0
          ();
        read ~id:2 ~key:0 ~started:20.0 ~ended:25.0 ~version:0;
      ]
  in
  Alcotest.(check int) "failed write ignored" 0 r.Consistency.writes_indexed;
  Alcotest.(check bool) "nothing to violate" true (Consistency.ok r)

let test_newest_prior_write_required () =
  let r =
    Consistency.check
      [
        write ~id:1 ~key:0 ~started:0.0 ~ended:5.0 ~version:1;
        write ~id:3 ~key:0 ~started:6.0 ~ended:15.0 ~version:2;
        read ~id:2 ~key:0 ~started:20.0 ~ended:25.0 ~version:1;
      ]
  in
  Alcotest.(check int) "one violation" 1 (List.length r.Consistency.violations);
  let v = List.hd r.Consistency.violations in
  Alcotest.(check int) "newest prior write named" 3 v.Consistency.write_id;
  Alcotest.(check int) "its version required" 2
    v.Consistency.required.Replication.Timestamp.version

let test_keys_independent () =
  let r =
    Consistency.check
      [
        write ~id:1 ~key:0 ~started:0.0 ~ended:10.0 ~version:5;
        read ~id:2 ~key:1 ~started:20.0 ~ended:25.0 ~version:0;
      ]
  in
  Alcotest.(check bool) "other key's writes irrelevant" true
    (Consistency.ok r)

(* Reads that return a version newer than required (e.g. observing an
   in-flight write) are legal too. *)
let test_newer_than_required_ok () =
  let r =
    Consistency.check
      [
        write ~id:1 ~key:0 ~started:0.0 ~ended:10.0 ~version:1;
        write ~id:3 ~key:0 ~started:15.0 ~ended:30.0 ~version:2;
        read ~id:2 ~key:0 ~started:20.0 ~ended:25.0 ~version:2;
      ]
  in
  Alcotest.(check bool) "fresher than required is fine" true
    (Consistency.ok r)

let suite =
  [
    Alcotest.test_case "fresh read passes" `Quick test_fresh_read_ok;
    Alcotest.test_case "stale read flagged with op ids" `Quick
      test_stale_read_flagged;
    Alcotest.test_case "concurrent write does not constrain" `Quick
      test_concurrent_write_unconstraining;
    Alcotest.test_case "simultaneous completion does not constrain" `Quick
      test_tie_not_constraining;
    Alcotest.test_case "unstamped spans skipped" `Quick test_unstamped_skipped;
    Alcotest.test_case "failed writes not indexed" `Quick
      test_failed_write_not_indexed;
    Alcotest.test_case "newest prior write is the bound" `Quick
      test_newest_prior_write_required;
    Alcotest.test_case "keys are independent" `Quick test_keys_independent;
    Alcotest.test_case "fresher than required passes" `Quick
      test_newer_than_required_ok;
  ]
