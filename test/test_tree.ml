module Tree = Arbitrary.Tree

let test_figure1_counts () =
  let t = Tree.figure1 () in
  Alcotest.(check int) "n" 8 (Tree.n t);
  Alcotest.(check int) "height" 2 (Tree.height t);
  Alcotest.(check (list int)) "K_phy" [ 1; 2 ] (Tree.physical_levels t);
  Alcotest.(check (list int)) "K_log" [ 0 ] (Tree.logical_levels t);
  Alcotest.(check int) "|K_phy|" 2 (Tree.num_physical_levels t);
  Alcotest.(check int) "d" 3 (Tree.min_level_size t);
  Alcotest.(check int) "e" 5 (Tree.max_level_size t);
  (* Table 1 exactly *)
  List.iter
    (fun (k, total, phy, log) ->
      let l = Tree.level t k in
      Alcotest.(check int) (Printf.sprintf "m_%d" k) total l.Tree.total;
      Alcotest.(check int) (Printf.sprintf "m_phy%d" k) phy l.Tree.physical;
      Alcotest.(check int) (Printf.sprintf "m_log%d" k) log l.Tree.logical)
    [ (0, 1, 0, 1); (1, 3, 3, 0); (2, 9, 5, 4) ]

let test_spec_roundtrip () =
  let t = Tree.of_spec "1-3-5" in
  Alcotest.(check string) "roundtrip" "1-3-5" (Tree.to_spec t);
  Alcotest.(check int) "n" 8 (Tree.n t);
  let t2 = Tree.of_spec "2-3-4" in
  Alcotest.(check int) "physical root spec" 9 (Tree.n t2);
  Alcotest.(check (list int)) "no logical level" [] (Tree.logical_levels t2)

let test_spec_validation () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "bad spec %S rejected" s)
        true
        (try
           ignore (Tree.of_spec s);
           false
         with Invalid_argument _ -> true))
    [ ""; "a-b"; "3--5"; "0-3"; "-1" ]

let test_replica_numbering () =
  let t = Tree.figure1 () in
  Alcotest.(check (array int)) "level 1 replicas" [| 0; 1; 2 |] (Tree.replicas_at t 1);
  Alcotest.(check (array int)) "level 2 replicas" [| 3; 4; 5; 6; 7 |]
    (Tree.replicas_at t 2);
  Alcotest.(check (array int)) "logical level empty" [||] (Tree.replicas_at t 0);
  Alcotest.(check int) "site 0 at level 1" 1 (Tree.level_of_replica t 0);
  Alcotest.(check int) "site 7 at level 2" 2 (Tree.level_of_replica t 7);
  Alcotest.check_raises "bad site"
    (Invalid_argument "Tree.level_of_replica: bad site id") (fun () ->
      ignore (Tree.level_of_replica t 8))

let test_node_kinds () =
  let t = Tree.figure1 () in
  Alcotest.(check bool) "root logical" true
    (Tree.node_kind t ~level:0 ~index:0 = Tree.Logical);
  Alcotest.(check bool) "level-1 physical" true
    (Tree.node_kind t ~level:1 ~index:2 = Tree.Physical);
  Alcotest.(check bool) "level-2 physical first" true
    (Tree.node_kind t ~level:2 ~index:4 = Tree.Physical);
  Alcotest.(check bool) "level-2 logical tail" true
    (Tree.node_kind t ~level:2 ~index:5 = Tree.Logical)

let test_parent_and_descendants () =
  let t = Tree.figure1 () in
  Alcotest.(check bool) "root has no parent" true
    (Tree.parent t ~level:0 ~index:0 = None);
  Alcotest.(check bool) "level-1 parent is root" true
    (Tree.parent t ~level:1 ~index:2 = Some (0, 0));
  (* Level 2 has 9 nodes over 3 parents: each parent gets 3. *)
  Alcotest.(check int) "children of (0,1)" 3 (Tree.descendants_count t ~level:1 ~index:0);
  Alcotest.(check int) "leaves have no children" 0
    (Tree.descendants_count t ~level:2 ~index:0);
  (* Sum of children counts equals the next level's node count. *)
  let total =
    List.fold_left
      (fun acc i -> acc + Tree.descendants_count t ~level:1 ~index:i)
      0 [ 0; 1; 2 ]
  in
  Alcotest.(check int) "children sum to m_2" 9 total

let test_assumption () =
  Alcotest.(check bool) "figure1 ok" true (Tree.satisfies_assumption (Tree.figure1 ()));
  Alcotest.(check bool) "decreasing violates" false
    (Tree.satisfies_assumption (Tree.of_spec "1-5-3"));
  Alcotest.(check bool) "equal first two violates strictness" false
    (Tree.satisfies_assumption (Tree.of_spec "3-3"));
  Alcotest.(check bool) "single level ok" true
    (Tree.satisfies_assumption (Tree.of_spec "5"))

let test_create_validation () =
  Alcotest.check_raises "no levels" (Invalid_argument "Tree.create: no levels")
    (fun () -> ignore (Tree.create []));
  Alcotest.check_raises "no replica"
    (Invalid_argument "Tree.create: tree has no replica") (fun () ->
      ignore (Tree.create [ (0, 1); (0, 2) ]));
  Alcotest.check_raises "interior logical level"
    (Invalid_argument "Tree.create: logical level below a physical level")
    (fun () -> ignore (Tree.create [ (2, 0); (0, 1); (3, 0) ]))

let test_equal () =
  Alcotest.(check bool) "structurally equal" true
    (Tree.equal (Tree.of_spec "1-3-5") (Tree.figure1 ()) = false);
  Alcotest.(check bool) "same spec equal" true
    (Tree.equal (Tree.of_spec "1-3-5") (Tree.of_spec "1-3-5"))

let suite =
  [
    Alcotest.test_case "figure 1 / table 1 counts" `Quick test_figure1_counts;
    Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "replica numbering" `Quick test_replica_numbering;
    Alcotest.test_case "node kinds" `Quick test_node_kinds;
    Alcotest.test_case "parents and descendants" `Quick test_parent_and_descendants;
    Alcotest.test_case "assumption 3.1" `Quick test_assumption;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "equality" `Quick test_equal;
  ]
