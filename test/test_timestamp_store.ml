module Timestamp = Replication.Timestamp
module Store = Replication.Store

let ts v s = Timestamp.make ~version:v ~sid:s

let test_ordering () =
  Alcotest.(check bool) "higher version newer" true
    (Timestamp.newer_than (ts 2 5) (ts 1 0));
  Alcotest.(check bool) "equal version, lower sid newer" true
    (Timestamp.newer_than (ts 1 2) (ts 1 7));
  Alcotest.(check bool) "not newer than self" false
    (Timestamp.newer_than (ts 1 1) (ts 1 1));
  Alcotest.(check bool) "zero oldest" true (Timestamp.newer_than (ts 1 99) Timestamp.zero)

let test_compare_consistent () =
  let a = ts 3 1 and b = ts 3 4 in
  Alcotest.(check bool) "compare positive" true (Timestamp.compare a b > 0);
  Alcotest.(check bool) "compare negative" true (Timestamp.compare b a < 0);
  Alcotest.(check int) "compare zero" 0 (Timestamp.compare a a);
  Alcotest.(check bool) "max picks newer" true (Timestamp.max b a = a)

let test_total_order_transitive () =
  let all = [ Timestamp.zero; ts 1 3; ts 1 1; ts 2 9; ts 2 2; ts 3 0 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              if Timestamp.compare a b > 0 && Timestamp.compare b c > 0 then
                Alcotest.(check bool) "transitive" true (Timestamp.compare a c > 0))
            all)
        all)
    all

let test_make_validation () =
  Alcotest.check_raises "negative version"
    (Invalid_argument "Timestamp.make: negative version") (fun () ->
      ignore (Timestamp.make ~version:(-1) ~sid:0))

let test_store_read_default () =
  let s = Store.create () in
  let t, v = Store.read s ~key:7 in
  Alcotest.(check bool) "zero ts" true (Timestamp.equal t Timestamp.zero);
  Alcotest.(check string) "empty value" "" v

let test_store_install_monotone () =
  let s = Store.create () in
  Alcotest.(check bool) "first install" true
    (Store.install s ~key:1 ~ts:(ts 1 0) ~value:"a");
  Alcotest.(check bool) "newer install" true
    (Store.install s ~key:1 ~ts:(ts 2 0) ~value:"b");
  Alcotest.(check bool) "stale install rejected" false
    (Store.install s ~key:1 ~ts:(ts 1 0) ~value:"stale");
  Alcotest.(check bool) "same ts rejected (idempotent)" false
    (Store.install s ~key:1 ~ts:(ts 2 0) ~value:"dup");
  let t, v = Store.read s ~key:1 in
  Alcotest.(check string) "latest value" "b" v;
  Alcotest.(check bool) "latest ts" true (Timestamp.equal t (ts 2 0))

let test_store_sid_tiebreak () =
  let s = Store.create () in
  ignore (Store.install s ~key:1 ~ts:(ts 1 5) ~value:"high-sid");
  Alcotest.(check bool) "lower sid wins tie" true
    (Store.install s ~key:1 ~ts:(ts 1 2) ~value:"low-sid");
  let _, v = Store.read s ~key:1 in
  Alcotest.(check string) "low sid value" "low-sid" v

let test_store_staging () =
  let s = Store.create () in
  Store.stage s ~op:10 ~key:1 ~ts:(ts 1 0) ~value:"staged";
  Alcotest.(check int) "one staged" 1 (Store.staged_count s);
  Alcotest.(check bool) "visible in staging" true (Store.staged s ~op:10 <> None);
  (* Staged writes are invisible to reads until committed. *)
  let _, v = Store.read s ~key:1 in
  Alcotest.(check string) "not visible" "" v;
  Alcotest.(check bool) "commit applies" true (Store.commit_staged s ~op:10);
  let _, v = Store.read s ~key:1 in
  Alcotest.(check string) "visible after commit" "staged" v;
  Alcotest.(check int) "staging cleared" 0 (Store.staged_count s);
  Alcotest.(check bool) "second commit is no-op" false (Store.commit_staged s ~op:10)

let test_store_abort () =
  let s = Store.create () in
  Store.stage s ~op:11 ~key:2 ~ts:(ts 1 0) ~value:"doomed";
  Store.abort_staged s ~op:11;
  Alcotest.(check bool) "aborted" true (Store.staged s ~op:11 = None);
  let _, v = Store.read s ~key:2 in
  Alcotest.(check string) "never applied" "" v

let test_store_keys () =
  let s = Store.create () in
  ignore (Store.install s ~key:3 ~ts:(ts 1 0) ~value:"x");
  ignore (Store.install s ~key:1 ~ts:(ts 1 0) ~value:"y");
  Alcotest.(check (list int)) "keys sorted" [ 1; 3 ] (Store.keys s)

let suite =
  [
    Alcotest.test_case "timestamp ordering" `Quick test_ordering;
    Alcotest.test_case "compare consistency" `Quick test_compare_consistent;
    Alcotest.test_case "total order transitivity" `Quick test_total_order_transitive;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "store default read" `Quick test_store_read_default;
    Alcotest.test_case "store monotone install" `Quick test_store_install_monotone;
    Alcotest.test_case "store sid tie-break" `Quick test_store_sid_tiebreak;
    Alcotest.test_case "store staging lifecycle" `Quick test_store_staging;
    Alcotest.test_case "store abort" `Quick test_store_abort;
    Alcotest.test_case "store keys" `Quick test_store_keys;
  ]
