module Tree = Arbitrary.Tree
module Config = Arbitrary.Config

let test_mostly_read () =
  let t = Config.mostly_read ~n:10 in
  Alcotest.(check int) "n" 10 (Tree.n t);
  Alcotest.(check int) "one physical level" 1 (Tree.num_physical_levels t);
  Alcotest.(check bool) "assumption" true (Tree.satisfies_assumption t)

let test_mostly_write () =
  let t = Config.mostly_write ~n:9 in
  Alcotest.(check int) "n" 9 (Tree.n t);
  Alcotest.(check int) "(n-1)/2 levels" 4 (Tree.num_physical_levels t);
  Alcotest.(check int) "min level 2" 2 (Tree.min_level_size t);
  Alcotest.(check int) "max level 3" 3 (Tree.max_level_size t);
  Alcotest.(check bool) "assumption" true (Tree.satisfies_assumption t);
  Alcotest.check_raises "even n rejected"
    (Invalid_argument "Config.mostly_write: n must be odd and at least 3")
    (fun () -> ignore (Config.mostly_write ~n:10));
  let t3 = Config.mostly_write ~n:3 in
  Alcotest.(check int) "n=3 single level" 1 (Tree.num_physical_levels t3)

let test_unmodified_binary () =
  let t = Config.unmodified_binary ~height:3 in
  Alcotest.(check int) "n = 2^(h+1)-1" 15 (Tree.n t);
  Alcotest.(check int) "h+1 physical levels" 4 (Tree.num_physical_levels t);
  Alcotest.(check (list int)) "no logical levels" [] (Tree.logical_levels t);
  List.iteri
    (fun k l ->
      ignore l;
      Alcotest.(check int)
        (Printf.sprintf "level %d size" k)
        (1 lsl k)
        (Tree.level t k).Tree.physical)
    [ (); (); (); () ]

let test_algorithm1 () =
  List.iter
    (fun n ->
      let t = Config.algorithm1 ~n in
      Alcotest.(check int) (Printf.sprintf "n=%d placed" n) n (Tree.n t);
      Alcotest.(check bool) "assumption holds" true (Tree.satisfies_assumption t);
      let k_phy = int_of_float (sqrt (float_of_int n)) in
      Alcotest.(check int) "sqrt(n) physical levels" k_phy
        (Tree.num_physical_levels t);
      (* First seven physical levels have four replicas. *)
      List.iteri
        (fun i k ->
          if i < 7 then
            Alcotest.(check int)
              (Printf.sprintf "level %d has 4" k)
              4
              (Tree.level t k).Tree.physical)
        (Tree.physical_levels t);
      Alcotest.(check int) "min level size 4" 4 (Tree.min_level_size t))
    [ 64; 65; 100; 256; 1000; 10000 ];
  Alcotest.check_raises "small n rejected"
    (Invalid_argument "Config.algorithm1: requires n >= 64") (fun () ->
      ignore (Config.algorithm1 ~n:63))

let test_proportional_small () =
  List.iter
    (fun n ->
      let t = Config.proportional_small ~n in
      Alcotest.(check int) (Printf.sprintf "n=%d placed" n) n (Tree.n t);
      Alcotest.(check bool) "assumption holds" true (Tree.satisfies_assumption t))
    [ 33; 36; 40; 50; 63 ]

let test_even_levels () =
  let t = Config.even_levels ~n:10 ~levels:3 in
  Alcotest.(check int) "n" 10 (Tree.n t);
  Alcotest.(check int) "levels" 3 (Tree.num_physical_levels t);
  Alcotest.(check bool) "assumption" true (Tree.satisfies_assumption t);
  (* 10 over 3 -> 3,3,4 *)
  Alcotest.(check int) "min 3" 3 (Tree.min_level_size t);
  Alcotest.(check int) "max 4" 4 (Tree.max_level_size t)

let test_build_dispatch () =
  List.iter
    (fun n ->
      List.iter
        (fun name ->
          match name with
          | Config.Binary | Config.Hqc ->
            Alcotest.(check bool)
              (Config.name_to_string name ^ " rejected")
              true
              (try
                 ignore (Config.build name ~n);
                 false
               with Invalid_argument _ -> true)
          | _ ->
            let t = Config.build name ~n in
            Alcotest.(check bool)
              (Printf.sprintf "%s n=%d assumption" (Config.name_to_string name) n)
              true (Tree.satisfies_assumption t))
        Config.all_names)
    [ 9; 33; 65; 129 ]

let test_build_sizes () =
  (* build must place exactly n replicas for the arbitrary-tree configs
     (odd-n snap for MOSTLY-WRITE). *)
  List.iter
    (fun n ->
      Alcotest.(check int) "mostly-read" n (Tree.n (Config.build Config.Mostly_read ~n));
      Alcotest.(check int) "arbitrary" n (Tree.n (Config.build Config.Arbitrary ~n)))
    [ 8; 16; 33; 64; 65; 128; 500 ]

let suite =
  [
    Alcotest.test_case "mostly-read" `Quick test_mostly_read;
    Alcotest.test_case "mostly-write" `Quick test_mostly_write;
    Alcotest.test_case "unmodified binary" `Quick test_unmodified_binary;
    Alcotest.test_case "algorithm 1" `Quick test_algorithm1;
    Alcotest.test_case "proportional small" `Quick test_proportional_small;
    Alcotest.test_case "even levels" `Quick test_even_levels;
    Alcotest.test_case "build dispatch" `Quick test_build_dispatch;
    Alcotest.test_case "build sizes" `Quick test_build_sizes;
  ]
