(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index), compares the
   analytic model against full protocol executions on the simulator,
   produces the instrumented baseline (BENCH_baseline.json), and finishes
   with bechamel micro-benchmarks of the hot paths.

   Run with: dune exec bench/main.exe            # everything
             dune exec bench/main.exe -- --smoke # baseline only (CI gate)

   The baseline section is a gate, not just a report: it exits non-zero
   when the measured per-site loads drift more than 10% from Equation 3.2,
   when span accounting leaks, or when the JSON payload fails its
   structural check. *)

open Bechamel

let hr title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* --- experiment regeneration -------------------------------------------- *)

let analytic_sections () =
  hr "T1 | Table 1 and the worked example of §3.4";
  print_string (Eval.Figures.table1 ());
  hr "F2 | Figure 2: communication costs";
  print_string (Eval.Figures.fig2 ());
  hr "F3 | Figure 3: (expected) system loads of read operations";
  print_string (Eval.Figures.fig3 ());
  hr "F4 | Figure 4: (expected) system loads of write operations";
  print_string (Eval.Figures.fig4 ());
  hr "P1 | Limit availabilities of §3.3";
  print_string (Eval.Figures.limits ());
  hr "§1 | Related-work comparison";
  print_string (Eval.Figures.related_work ());
  hr "§4 | Qualitative shape checks";
  print_string (Eval.Figures.shape_checks ())

let simulation_sections () =
  hr "A1 | Ablation: measured (simulated) vs analytic";
  print_string (Eval.Simulate.cost_load_table ~n:65 ~ops:400 ());
  print_newline ();
  print_string (Eval.Simulate.cost_sweep ());
  print_newline ();
  print_string (Eval.Simulate.latency_table ());
  print_newline ();
  print_string (Eval.Simulate.availability_table ~n:65 ~trials:3000 ());
  print_newline ();
  print_string (Eval.Simulate.failure_availability_table ~n:33 ~patterns:40 ())

let txn_section () =
  hr "§2.2 | Transactions: 2PL + cross-key 2PC (increment workload)";
  let proto =
    Arbitrary.Quorums.protocol (Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:24)
  in
  let s = Replication.Txn_harness.default_scenario ~proto in
  Format.printf "failure-free:@.  %a@." Replication.Txn_harness.pp_report
    (Replication.Txn_harness.run s);
  let rng = Dsutil.Rng.create 5 in
  let failures =
    Dsim.Failure.random_crash_recovery ~rng ~n:24 ~horizon:400.0 ~mtbf:150.0
      ~mttr:40.0
  in
  Format.printf "churn + 2%% loss:@.  %a@." Replication.Txn_harness.pp_report
    (Replication.Txn_harness.run
       { s with Replication.Txn_harness.failures; loss_rate = 0.02; n_clients = 4 })

let generalized_section () =
  hr "Extension: per-level (r,w) thresholds (Generalized protocol)";
  let tree = Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:64 in
  let p = 0.7 in
  let rows =
    List.map
      (fun (name, g) ->
        [
          name;
          string_of_int (Arbitrary.Generalized.read_cost g);
          Printf.sprintf "%.2f" (Arbitrary.Generalized.write_cost_avg g);
          Printf.sprintf "%.4f" (Arbitrary.Generalized.read_load g);
          Printf.sprintf "%.4f" (Arbitrary.Generalized.write_load g);
          Printf.sprintf "%.4f" (Arbitrary.Generalized.read_availability g ~p);
          Printf.sprintf "%.4f" (Arbitrary.Generalized.write_availability g ~p);
        ])
      [
        ("classic (paper)", Arbitrary.Generalized.classic tree);
        ("level-majority", Arbitrary.Generalized.level_majority tree);
      ]
  in
  print_string
    (Eval.Tablefmt.render
       ~header:
         [ "thresholds"; "rd cost"; "wr cost"; "rd load"; "wr load";
           "rd avail"; "wr avail" ]
       ~rows);
  Format.printf
    "(algorithm-1 tree, n=64, p=%.1f: majority thresholds cut the write cost@.    \ and lift write availability, paying with read cost — a knob the@.    \ paper's 1-of/all-of rule does not expose)@." p

let placement_section () =
  hr "Ablation: replica placement under heterogeneous availability";
  let tree = Arbitrary.Tree.figure1 () in
  let p = [| 0.95; 0.95; 0.95; 0.6; 0.6; 0.6; 0.6; 0.6 |] in
  let show name a =
    Format.printf "  %-22s read avail %.4f   write avail %.4f@." name
      (Arbitrary.Placement.availability_of tree ~p a
         Arbitrary.Placement.Read_availability)
      (Arbitrary.Placement.availability_of tree ~p a
         Arbitrary.Placement.Write_availability)
  in
  Format.printf
    "figure-1 tree, three 0.95-sites among five 0.6-sites; where they sit:@.";
  show "identity" (Arbitrary.Placement.identity tree);
  show "spread (read-greedy)"
    (Arbitrary.Placement.greedy tree ~p Arbitrary.Placement.Read_availability);
  show "concentrate (wr-greedy)"
    (Arbitrary.Placement.greedy tree ~p Arbitrary.Placement.Write_availability);
  show "exhaustive (reads)"
    (Arbitrary.Placement.exhaustive tree ~p Arbitrary.Placement.Read_availability);
  Format.printf
    "  -> reads want reliable sites SPREAD one per level; writes want them@.    \   CONCENTRATED on one level. The paper's uniform-p model hides this.@."

let planner_section () =
  hr "§3.3 | Planner spectrum (n=100, p=0.8)";
  let rows =
    List.map
      (fun read_fraction ->
        let tree = Arbitrary.Planner.plan ~n:100 ~p:0.8 ~read_fraction () in
        let s = Arbitrary.Analysis.summarize tree ~p:0.8 in
        [
          Printf.sprintf "%.2f" read_fraction;
          string_of_int (Arbitrary.Tree.num_physical_levels tree);
          string_of_int s.Arbitrary.Analysis.rd_cost;
          Printf.sprintf "%.2f" s.Arbitrary.Analysis.wr_cost_avg;
          Printf.sprintf "%.4f" s.Arbitrary.Analysis.expected_rd_load;
          Printf.sprintf "%.4f" s.Arbitrary.Analysis.expected_wr_load;
        ])
      [ 0.01; 0.25; 0.5; 0.75; 0.99 ]
  in
  print_string
    (Eval.Tablefmt.render
       ~header:
         [ "read frac"; "|K_phy|"; "rd cost"; "wr cost"; "E[L_RD]"; "E[L_WR]" ]
       ~rows);
  (* The extension-aware planner may pick level-majority thresholds. *)
  Format.printf "@.with generalized thresholds (write-heavy mix):@.";
  let g = Arbitrary.Planner.plan_generalized ~n:100 ~p:0.8 ~read_fraction:0.1 () in
  Format.printf "  tree %s  thresholds r=%s w=%s@."
    (Arbitrary.Tree.to_spec (Arbitrary.Generalized.tree g))
    (String.concat "," (List.map string_of_int (Arbitrary.Generalized.read_thresholds g)))
    (String.concat "," (List.map string_of_int (Arbitrary.Generalized.write_thresholds g)))

(* --- instrumented baseline (gate) --------------------------------------- *)

let baseline_path = "BENCH_baseline.json"

(* Cheap structural check of the payload we just wrote: schema marker,
   every configuration present, object closed.  Catches truncated or
   garbled writes without a JSON parser. *)
let baseline_json_valid json =
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  String.length json > 2
  && String.sub json 0 1 = "{"
  && json.[String.length json - 1] = '}'
  && contains "\"schema\":\"bench-baseline/1\""
  && contains "\"max_load_error\""
  && contains "\"spans\""
  && List.for_all
       (fun (name, _, _) ->
         contains (Printf.sprintf "\"config\":\"%s\"" (Arbitrary.Config.name_to_string name)))
       Eval.Baseline.default_cases

let baseline_section () =
  hr "B0 | Baseline: instrumented workloads vs Equation 3.2";
  let seed = Eval.Baseline.default_seed and n = Eval.Baseline.default_n in
  let rows = Eval.Baseline.measure_all ~seed ~n () in
  print_string (Eval.Baseline.table rows);
  let err = Eval.Baseline.max_load_error rows in
  let leaks = Eval.Baseline.span_leaks rows in
  Printf.printf "\nmax per-site load deviation vs closed form: %.1f%% (gate: 10%%)\n"
    (100.0 *. err);
  Printf.printf "span accounting: %d leaked (gate: 0)\n" leaks;
  let json = Eval.Baseline.to_json ~seed ~n rows in
  let oc = open_out baseline_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  let valid = baseline_json_valid json in
  Printf.printf "wrote %s (%d bytes, structural check %s)\n" baseline_path
    (String.length json + 1)
    (if valid then "OK" else "FAILED");
  let ok = err <= 0.10 && leaks = 0 && valid in
  if not ok then begin
    print_endline "BASELINE GATE FAILED";
    exit 1
  end

(* --- bechamel micro-benchmarks ------------------------------------------ *)

let bench_tests () =
  let rng = Dsutil.Rng.create 7 in
  let tree = Arbitrary.Config.algorithm1 ~n:100 in
  let proto = Arbitrary.Quorums.protocol tree in
  let alive = Quorum.Protocol.all_alive proto in
  let tq = Quorum.Tree_quorum.create ~height:6 in
  let tq_alive = Quorum.Protocol.all_alive (Quorum.Tree_quorum.protocol tq) in
  let hqc = Quorum.Hqc.create ~depth:4 in
  let hqc_alive = Quorum.Protocol.all_alive (Quorum.Hqc.protocol hqc) in
  let fig1 = Arbitrary.Tree.figure1 () in
  let fig1_reads =
    Quorum.Quorum_set.create ~universe:8
      (List.of_seq (Arbitrary.Quorums.enumerate_read_quorums fig1))
  in
  [
    Test.make ~name:"T1: figure-1 analytic summary"
      (Staged.stage (fun () -> Arbitrary.Analysis.summarize fig1 ~p:0.7));
    Test.make ~name:"F2: config metrics at n=513"
      (Staged.stage (fun () ->
           List.map
             (fun c -> Eval.Config_metrics.compute c ~n:513 ~p:0.7)
             Arbitrary.Config.all_names));
    Test.make ~name:"F3/F4: algorithm-1 tree build (n=10000)"
      (Staged.stage (fun () -> Arbitrary.Config.algorithm1 ~n:10000));
    Test.make ~name:"arbitrary read-quorum assembly (n=100)"
      (Staged.stage (fun () -> Arbitrary.Quorums.read_quorum tree ~alive ~rng));
    Test.make ~name:"arbitrary write-quorum assembly (n=100)"
      (Staged.stage (fun () -> Arbitrary.Quorums.write_quorum tree ~alive ~rng));
    Test.make ~name:"tree-quorum assembly (n=127)"
      (Staged.stage (fun () ->
           Quorum.Tree_quorum.read_quorum tq ~alive:tq_alive ~rng));
    Test.make ~name:"HQC assembly (n=81)"
      (Staged.stage (fun () -> Quorum.Hqc.read_quorum hqc ~alive:hqc_alive ~rng));
    Test.make ~name:"P3: LP optimal load (figure-1 reads)"
      (Staged.stage (fun () -> Analysis.Load_lp.optimal_load fig1_reads));
    Test.make ~name:"A1: end-to-end simulation (1 client, 20 ops)"
      (Staged.stage (fun () ->
           let s = Replication.Harness.default_scenario ~proto in
           Replication.Harness.run
             { s with Replication.Harness.n_clients = 1; ops_per_client = 20 }));
    Test.make ~name:"txn harness (1 client, 10 increment txns)"
      (Staged.stage (fun () ->
           let s = Replication.Txn_harness.default_scenario ~proto in
           Replication.Txn_harness.run
             { s with Replication.Txn_harness.n_clients = 1; txns_per_client = 10 }));
  ]

let run_benchmarks () =
  hr "Micro-benchmarks (bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"repro" ~fmt:"%s %s" (bench_tests ()))
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if ns < 1_000.0 then Printf.printf "%-55s %10.1f ns/run\n" name ns
      else if ns < 1_000_000.0 then
        Printf.printf "%-55s %10.2f us/run\n" name (ns /. 1_000.0)
      else Printf.printf "%-55s %10.2f ms/run\n" name (ns /. 1_000_000.0))
    (List.sort compare !rows)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  if smoke then baseline_section ()
  else begin
    analytic_sections ();
    planner_section ();
    simulation_sections ();
    txn_section ();
    placement_section ();
    generalized_section ();
    baseline_section ();
    run_benchmarks ();
    print_newline ()
  end
