(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index), compares the
   analytic model against full protocol executions on the simulator,
   produces the instrumented baseline (BENCH_baseline.json), and finishes
   with bechamel micro-benchmarks of the hot paths.

   Run with: dune exec bench/main.exe              # everything
             dune exec bench/main.exe -- --smoke   # baseline only (CI gate)
             dune exec bench/main.exe -- --hotpath # hot paths only (CI perf gate)
             dune exec bench/main.exe -- --shard   # shard scaling only (CI gate)

   The baseline section is a gate, not just a report: it exits non-zero
   when the measured per-site loads drift more than 10% from Equation 3.2,
   when span accounting leaks, or when the JSON payload fails its
   structural check. *)

open Bechamel

let hr title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* --- experiment regeneration -------------------------------------------- *)

let analytic_sections () =
  hr "T1 | Table 1 and the worked example of §3.4";
  print_string (Eval.Figures.table1 ());
  hr "F2 | Figure 2: communication costs";
  print_string (Eval.Figures.fig2 ());
  hr "F3 | Figure 3: (expected) system loads of read operations";
  print_string (Eval.Figures.fig3 ());
  hr "F4 | Figure 4: (expected) system loads of write operations";
  print_string (Eval.Figures.fig4 ());
  hr "P1 | Limit availabilities of §3.3";
  print_string (Eval.Figures.limits ());
  hr "§1 | Related-work comparison";
  print_string (Eval.Figures.related_work ());
  hr "§4 | Qualitative shape checks";
  print_string (Eval.Figures.shape_checks ())

let simulation_sections () =
  hr "A1 | Ablation: measured (simulated) vs analytic";
  print_string (Eval.Simulate.cost_load_table ~n:65 ~ops:400 ());
  print_newline ();
  print_string (Eval.Simulate.cost_sweep ());
  print_newline ();
  print_string (Eval.Simulate.latency_table ());
  print_newline ();
  print_string (Eval.Simulate.availability_table ~n:65 ~trials:3000 ());
  print_newline ();
  print_string (Eval.Simulate.failure_availability_table ~n:33 ~patterns:40 ())

let txn_section () =
  hr "§2.2 | Transactions: 2PL + cross-key 2PC (increment workload)";
  let proto =
    Arbitrary.Quorums.protocol (Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:24)
  in
  let s = Replication.Txn_harness.default_scenario ~proto in
  Format.printf "failure-free:@.  %a@." Replication.Txn_harness.pp_report
    (Replication.Txn_harness.run s);
  let rng = Dsutil.Rng.create 5 in
  let failures =
    Dsim.Failure.random_crash_recovery ~rng ~n:24 ~horizon:400.0 ~mtbf:150.0
      ~mttr:40.0
  in
  Format.printf "churn + 2%% loss:@.  %a@." Replication.Txn_harness.pp_report
    (Replication.Txn_harness.run
       { s with Replication.Txn_harness.failures; loss_rate = 0.02; n_clients = 4 })

let generalized_section () =
  hr "Extension: per-level (r,w) thresholds (Generalized protocol)";
  let tree = Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:64 in
  let p = 0.7 in
  let rows =
    List.map
      (fun (name, g) ->
        [
          name;
          string_of_int (Arbitrary.Generalized.read_cost g);
          Printf.sprintf "%.2f" (Arbitrary.Generalized.write_cost_avg g);
          Printf.sprintf "%.4f" (Arbitrary.Generalized.read_load g);
          Printf.sprintf "%.4f" (Arbitrary.Generalized.write_load g);
          Printf.sprintf "%.4f" (Arbitrary.Generalized.read_availability g ~p);
          Printf.sprintf "%.4f" (Arbitrary.Generalized.write_availability g ~p);
        ])
      [
        ("classic (paper)", Arbitrary.Generalized.classic tree);
        ("level-majority", Arbitrary.Generalized.level_majority tree);
      ]
  in
  print_string
    (Eval.Tablefmt.render
       ~header:
         [ "thresholds"; "rd cost"; "wr cost"; "rd load"; "wr load";
           "rd avail"; "wr avail" ]
       ~rows);
  Format.printf
    "(algorithm-1 tree, n=64, p=%.1f: majority thresholds cut the write cost@.    \ and lift write availability, paying with read cost — a knob the@.    \ paper's 1-of/all-of rule does not expose)@." p

let placement_section () =
  hr "Ablation: replica placement under heterogeneous availability";
  let tree = Arbitrary.Tree.figure1 () in
  let p = [| 0.95; 0.95; 0.95; 0.6; 0.6; 0.6; 0.6; 0.6 |] in
  let show name a =
    Format.printf "  %-22s read avail %.4f   write avail %.4f@." name
      (Arbitrary.Placement.availability_of tree ~p a
         Arbitrary.Placement.Read_availability)
      (Arbitrary.Placement.availability_of tree ~p a
         Arbitrary.Placement.Write_availability)
  in
  Format.printf
    "figure-1 tree, three 0.95-sites among five 0.6-sites; where they sit:@.";
  show "identity" (Arbitrary.Placement.identity tree);
  show "spread (read-greedy)"
    (Arbitrary.Placement.greedy tree ~p Arbitrary.Placement.Read_availability);
  show "concentrate (wr-greedy)"
    (Arbitrary.Placement.greedy tree ~p Arbitrary.Placement.Write_availability);
  show "exhaustive (reads)"
    (Arbitrary.Placement.exhaustive tree ~p Arbitrary.Placement.Read_availability);
  Format.printf
    "  -> reads want reliable sites SPREAD one per level; writes want them@.    \   CONCENTRATED on one level. The paper's uniform-p model hides this.@."

let planner_section () =
  hr "§3.3 | Planner spectrum (n=100, p=0.8)";
  let rows =
    List.map
      (fun read_fraction ->
        let tree = Arbitrary.Planner.plan ~n:100 ~p:0.8 ~read_fraction () in
        let s = Arbitrary.Analysis.summarize tree ~p:0.8 in
        [
          Printf.sprintf "%.2f" read_fraction;
          string_of_int (Arbitrary.Tree.num_physical_levels tree);
          string_of_int s.Arbitrary.Analysis.rd_cost;
          Printf.sprintf "%.2f" s.Arbitrary.Analysis.wr_cost_avg;
          Printf.sprintf "%.4f" s.Arbitrary.Analysis.expected_rd_load;
          Printf.sprintf "%.4f" s.Arbitrary.Analysis.expected_wr_load;
        ])
      [ 0.01; 0.25; 0.5; 0.75; 0.99 ]
  in
  print_string
    (Eval.Tablefmt.render
       ~header:
         [ "read frac"; "|K_phy|"; "rd cost"; "wr cost"; "E[L_RD]"; "E[L_WR]" ]
       ~rows);
  (* The extension-aware planner may pick level-majority thresholds. *)
  Format.printf "@.with generalized thresholds (write-heavy mix):@.";
  let g = Arbitrary.Planner.plan_generalized ~n:100 ~p:0.8 ~read_fraction:0.1 () in
  Format.printf "  tree %s  thresholds r=%s w=%s@."
    (Arbitrary.Tree.to_spec (Arbitrary.Generalized.tree g))
    (String.concat "," (List.map string_of_int (Arbitrary.Generalized.read_thresholds g)))
    (String.concat "," (List.map string_of_int (Arbitrary.Generalized.write_thresholds g)))

(* --- instrumented baseline (gate) --------------------------------------- *)

let baseline_path = "BENCH_baseline.json"

(* Cheap structural check of the payload we just wrote: schema marker,
   every configuration present, object closed.  Catches truncated or
   garbled writes without a JSON parser. *)
let baseline_json_valid json =
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  String.length json > 2
  && String.sub json 0 1 = "{"
  && json.[String.length json - 1] = '}'
  && contains "\"schema\":\"bench-baseline/1\""
  && contains "\"max_load_error\""
  && contains "\"spans\""
  && List.for_all
       (fun (name, _, _) ->
         contains (Printf.sprintf "\"config\":\"%s\"" (Arbitrary.Config.name_to_string name)))
       Eval.Baseline.default_cases

let baseline_section () =
  hr "B0 | Baseline: instrumented workloads vs Equation 3.2";
  let seed = Eval.Baseline.default_seed and n = Eval.Baseline.default_n in
  let rows = Eval.Baseline.measure_all ~seed ~n () in
  print_string (Eval.Baseline.table rows);
  let err = Eval.Baseline.max_load_error rows in
  let leaks = Eval.Baseline.span_leaks rows in
  Printf.printf "\nmax per-site load deviation vs closed form: %.1f%% (gate: 10%%)\n"
    (100.0 *. err);
  Printf.printf "span accounting: %d leaked (gate: 0)\n" leaks;
  let json = Eval.Baseline.to_json ~seed ~n rows in
  let oc = open_out baseline_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  let valid = baseline_json_valid json in
  Printf.printf "wrote %s (%d bytes, structural check %s)\n" baseline_path
    (String.length json + 1)
    (if valid then "OK" else "FAILED");
  let ok = err <= 0.10 && leaks = 0 && valid in
  if not ok then begin
    print_endline "BASELINE GATE FAILED";
    exit 1
  end

(* --- hot-path benchmark (BENCH_hotpath.json) ----------------------------- *)

let hotpath_path = "BENCH_hotpath.json"

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ops_per_sec ~iters f =
  for _ = 1 to iters / 10 do
    ignore (f ())
  done;
  let (), dt = wall (fun () -> for _ = 1 to iters do ignore (f ()) done) in
  if dt <= 0.0 then 0.0 else float_of_int iters /. dt

let pair_json ~cached ~uncached =
  Printf.sprintf
    "{\"cached_ops_s\":%.1f,\"uncached_ops_s\":%.1f,\"speedup\":%.3f}" cached
    uncached
    (if uncached <= 0.0 then 0.0 else cached /. uncached)

(* Cached (Plan_cache) vs reference quorum assembly on the §4 ARBITRARY
   tree at n=65, on the failure-free fast path (alive = universe) and a
   degraded slow path (one replica of the deepest level down — both
   quorum kinds still exist, but every per-level scan must filter). *)
let quorum_hotpath () =
  let name k (cached, uncached) =
    Printf.printf "  %-28s cached %12.0f ops/s   uncached %12.0f ops/s   (%.1fx)\n"
      k cached uncached
      (if uncached <= 0.0 then 0.0 else cached /. uncached);
    (cached, uncached)
  in
  let tree = Arbitrary.Config.build Arbitrary.Config.Arbitrary ~n:65 in
  let n = Arbitrary.Tree.n tree in
  let plan = Arbitrary.Plan_cache.create tree in
  let full = Quorum.Protocol.all_alive (Arbitrary.Quorums.protocol tree) in
  let degraded = Dsutil.Bitset.copy full in
  let levels = Arbitrary.Tree.physical_levels tree in
  let deepest = List.nth levels (List.length levels - 1) in
  Dsutil.Bitset.remove degraded (Arbitrary.Tree.replicas_at tree deepest).(0);
  let rng = Dsutil.Rng.create 11 in
  let iters = 200_000 in
  let run cached reference =
    (ops_per_sec ~iters cached, ops_per_sec ~iters reference)
  in
  let rd =
    name "read (failure-free)"
      (run
         (fun () -> Arbitrary.Plan_cache.read_quorum plan ~alive:full ~rng)
         (fun () -> Arbitrary.Quorums.read_quorum tree ~alive:full ~rng))
  in
  let wr =
    name "write (failure-free)"
      (run
         (fun () -> Arbitrary.Plan_cache.write_quorum plan ~alive:full ~rng)
         (fun () -> Arbitrary.Quorums.write_quorum tree ~alive:full ~rng))
  in
  let rd_d =
    name "read (degraded)"
      (run
         (fun () -> Arbitrary.Plan_cache.read_quorum plan ~alive:degraded ~rng)
         (fun () -> Arbitrary.Quorums.read_quorum tree ~alive:degraded ~rng))
  in
  let wr_d =
    name "write (degraded)"
      (run
         (fun () -> Arbitrary.Plan_cache.write_quorum plan ~alive:degraded ~rng)
         (fun () -> Arbitrary.Quorums.write_quorum tree ~alive:degraded ~rng))
  in
  let json (c, u) = pair_json ~cached:c ~uncached:u in
  ( Printf.sprintf
      "{\"n\":%d,\"iters\":%d,\"read\":%s,\"write\":%s,\"read_degraded\":%s,\"write_degraded\":%s}"
      n iters (json rd) (json wr) (json rd_d) (json wr_d),
    fst rd >= snd rd && fst wr >= snd wr )

(* The §4 workload scenario every hot-path probe runs: single client,
   2000 ops, seed 42.  [read_fraction] picks the op mix. *)
let hotpath_scenario ?(pipeline = false) ~read_fraction name =
  let n = Eval.Config_metrics.feasible_n name 33 in
  let proto = Eval.Config_metrics.protocol_of name ~n in
  let s = Replication.Harness.default_scenario ~proto in
  ( {
      s with
      Replication.Harness.n_clients = 1;
      ops_per_client = 2000;
      read_fraction;
      think_time = 0.1;
      seed = 42;
      coordinator =
        {
          s.Replication.Harness.coordinator with
          Replication.Coordinator.pipeline_levels = pipeline;
        };
    },
    n )

(* End-to-end simulated operations per wall-clock second for each §4
   workload configuration (mixed 50/50, single client).  The seed column
   was recorded by this same probe at the pre-flattening head (commit
   c0b3564); the flat-representation work claims >= 1.3x on at least one
   configuration. *)
let e2e_seed_ops_s =
  [
    (Arbitrary.Config.Unmodified, 95479.0);
    (Arbitrary.Config.Mostly_read, 26043.0);
    (Arbitrary.Config.Mostly_write, 60458.0);
    (Arbitrary.Config.Arbitrary, 87317.0);
  ]

let e2e_hotpath () =
  let cases =
    List.map
      (fun (name, seed_rate) ->
        let scenario, n = hotpath_scenario ~read_fraction:0.5 name in
        (* Steady state: one warm-up run (lazy plan/table initialization,
           allocator ramp-up), then best of three timed runs — wall clock
           on a shared box is noisy and a single cold shot under-reads by
           10-20%.  The seed column is a pre-warmed measurement too, so
           the comparison is like for like. *)
        ignore (Replication.Harness.run scenario);
        let rate = ref 0.0 in
        let ops = ref 0 in
        for _ = 1 to 3 do
          let r, dt = wall (fun () -> Replication.Harness.run scenario) in
          ops :=
            r.Replication.Harness.reads_ok + r.Replication.Harness.reads_failed
            + r.Replication.Harness.writes_ok
            + r.Replication.Harness.writes_failed;
          if dt > 0.0 then rate := Float.max !rate (float_of_int !ops /. dt)
        done;
        let rate = !rate and ops = !ops in
        let speedup = rate /. seed_rate in
        Printf.printf "  %-12s n=%-3d %10.0f simulated ops/s   (seed %.0f, %.2fx)\n"
          (Arbitrary.Config.name_to_string name)
          n rate seed_rate speedup;
        ( Printf.sprintf
            "{\"config\":\"%s\",\"n\":%d,\"ops\":%d,\"ops_s\":%.1f,\"seed_ops_s\":%.1f,\"speedup\":%.3f}"
            (Arbitrary.Config.name_to_string name)
            n ops rate seed_rate speedup,
          speedup ))
      e2e_seed_ops_s
  in
  let best = List.fold_left (fun acc (_, s) -> Float.max acc s) 0.0 cases in
  Printf.printf "  best speedup vs seed %.2fx (gate: >= 1.3x on some config)\n" best;
  (Printf.sprintf "[%s]" (String.concat "," (List.map fst cases)), best >= 1.3)

(* Minor-heap words allocated per completed operation on the failure-free
   read-only and write-only §4 workloads.  [Gc.minor_words] counts
   allocated words, not time, so unlike wall clock the number is
   deterministic for a given compiler — safe to gate against the recorded
   seed column (measured by this same probe at the pre-flattening head,
   commit c0b3564).  A warm-up run keeps lazy table/plan initialization
   out of the measured window. *)
let alloc_seed_w_op =
  [
    (* config, read-path words/op, write-path words/op *)
    (Arbitrary.Config.Unmodified, 895.4, 2850.2);
    (Arbitrary.Config.Mostly_read, 365.4, 12300.7);
    (Arbitrary.Config.Mostly_write, 2600.7, 3296.8);
    (Arbitrary.Config.Arbitrary, 1324.5, 2580.5);
  ]

let alloc_hotpath () =
  let words_per_op ~read_fraction name =
    let scenario, _ = hotpath_scenario ~read_fraction name in
    ignore (Replication.Harness.run scenario);
    let w0 = Gc.minor_words () in
    let r = Replication.Harness.run scenario in
    let dw = Gc.minor_words () -. w0 in
    let ops = Replication.Harness.completed r in
    if ops = 0 then infinity else dw /. float_of_int ops
  in
  let cases =
    List.map
      (fun (name, seed_rd, seed_wr) ->
        let rd = words_per_op ~read_fraction:1.0 name in
        let wr = words_per_op ~read_fraction:0.0 name in
        let red x seed = 100.0 *. (1.0 -. (x /. seed)) in
        Printf.printf
          "  %-12s read %8.1f w/op (seed %8.1f, -%2.0f%%)   write %8.1f w/op (seed %8.1f, -%2.0f%%)\n"
          (Arbitrary.Config.name_to_string name)
          rd seed_rd (red rd seed_rd) wr seed_wr (red wr seed_wr);
        ( Printf.sprintf
            "{\"config\":\"%s\",\"read_w_op\":%.1f,\"seed_read_w_op\":%.1f,\"write_w_op\":%.1f,\"seed_write_w_op\":%.1f}"
            (Arbitrary.Config.name_to_string name)
            rd seed_rd wr seed_wr,
          rd <= 0.5 *. seed_rd && wr <= 0.5 *. seed_wr ))
      alloc_seed_w_op
  in
  let ok = List.for_all snd cases in
  Printf.printf
    "  alloc gate (>= 50%% fewer minor words/op, both paths, every config): %s\n"
    (if ok then "OK" else "FAILED");
  (Printf.sprintf "[%s]" (String.concat "," (List.map fst cases)), ok)

(* Tree-level pipelined reads must return exactly the results of the
   level-barrier path.  Each §4 config runs seeded and failure-free both
   ways; the full (key, value, timestamp) trace of successful reads (in
   completion order — a single client completes ops in issue order) and
   the completed-op count must match.  Only dispatch order differs under
   pipelining, so latency draws land on different messages and durations
   legitimately diverge — byte-identity is claimed only with pipelining
   off, by the fingerprint controls in the batch section. *)
let pipeline_hotpath () =
  let trace ~pipeline name =
    let scenario, _ = hotpath_scenario ~pipeline ~read_fraction:0.5 name in
    let acc = ref [] in
    let r =
      Replication.Harness.run
        ~read_probe:(fun ~key { Replication.Coordinator.value; ts; _ } ->
          acc :=
            ( key,
              value,
              ts.Replication.Timestamp.version,
              ts.Replication.Timestamp.sid )
            :: !acc)
        scenario
    in
    (List.rev !acc, Replication.Harness.completed r)
  in
  let cases =
    List.map
      (fun (name, _) ->
        let barrier, done_b = trace ~pipeline:false name in
        let piped, done_p = trace ~pipeline:true name in
        let equal = barrier = piped && done_b = done_p in
        Printf.printf "  %-12s %4d reads traced, pipelined results %s\n"
          (Arbitrary.Config.name_to_string name)
          (List.length barrier)
          (if equal then "identical" else "DIVERGED");
        ( Printf.sprintf
            "{\"config\":\"%s\",\"reads\":%d,\"completed\":%d,\"equal\":%b}"
            (Arbitrary.Config.name_to_string name)
            (List.length barrier) done_b equal,
          equal ))
      e2e_seed_ops_s
  in
  let ok = List.for_all snd cases in
  (Printf.sprintf "[%s]" (String.concat "," (List.map fst cases)), ok)

(* Batched vs unbatched end-to-end throughput on the same §4 workloads:
   batching collapses per-op quorum rounds, 2PC exchanges and think
   events into per-window ones, so the simulator retires far fewer
   events per client op.  Gated claims: at least one configuration
   speeds up >= 5x, no run ever reports a safety violation, and the
   batch-size-1 control reproduces the unbatched run byte-for-byte. *)
let batch_hotpath () =
  let knobs = Eval.Batching.default_knobs in
  let ops = 2000 in
  let results =
    List.map
      (fun name ->
        let n = Eval.Config_metrics.feasible_n name 33 in
        let plain, batched =
          Eval.Batching.pair ~knobs ~name ~n:33 ~ops ~seed:42 ()
        in
        let r_u, dt_u = wall (fun () -> Replication.Harness.run plain) in
        let r_b, dt_b = wall (fun () -> Replication.Harness.run batched) in
        let count r =
          r.Replication.Harness.reads_ok + r.Replication.Harness.reads_failed
          + r.Replication.Harness.writes_ok
          + r.Replication.Harness.writes_failed
        in
        let rate r dt = if dt <= 0.0 then 0.0 else float_of_int (count r) /. dt in
        let ru = rate r_u dt_u and rb = rate r_b dt_b in
        let speedup = if ru <= 0.0 then 0.0 else rb /. ru in
        let violations =
          r_u.Replication.Harness.safety_violations
          + r_b.Replication.Harness.safety_violations
        in
        Printf.printf
          "  %-12s n=%-3d %10.0f ops/s unbatched  %10.0f ops/s batched  (%.1fx)  batches=%d coalesced=%d\n"
          (Arbitrary.Config.name_to_string name)
          n ru rb speedup r_b.Replication.Harness.batches
          r_b.Replication.Harness.coalesced_ops;
        ( Printf.sprintf
            "{\"config\":\"%s\",\"n\":%d,\"ops\":%d,\"unbatched_ops_s\":%.1f,\"batched_ops_s\":%.1f,\"speedup\":%.3f,\"batches\":%d,\"coalesced\":%d,\"safety_violations\":%d}"
            (Arbitrary.Config.name_to_string name)
            n ops ru rb speedup r_b.Replication.Harness.batches
            r_b.Replication.Harness.coalesced_ops violations,
          (speedup, violations) ))
      [
        Arbitrary.Config.Unmodified; Arbitrary.Config.Mostly_read;
        Arbitrary.Config.Mostly_write; Arbitrary.Config.Arbitrary;
      ]
  in
  (* Determinism control on one configuration: a batch-1/pipeline-1 run
     must fingerprint identically to the unbatched run. *)
  let plain, batch1 =
    Eval.Batching.pair ~knobs:Eval.Batching.identity_knobs
      ~name:Arbitrary.Config.Arbitrary ~n:33 ~ops:200 ~seed:7 ()
  in
  let identical =
    Eval.Batching.fingerprint (Replication.Harness.run plain)
    = Eval.Batching.fingerprint (Replication.Harness.run batch1)
  in
  let best =
    List.fold_left (fun acc (_, (s, _)) -> Float.max acc s) 0.0 results
  in
  let violations = List.fold_left (fun acc (_, (_, v)) -> acc + v) 0 results in
  Printf.printf
    "  best speedup %.1fx (gate: >= 5x)   safety violations %d (gate: 0)   batch-1 control %s\n"
    best violations
    (if identical then "byte-identical" else "DIVERGED");
  ( Printf.sprintf
      "{\"batch_size\":%d,\"pipeline\":%d,\"group_commit\":%b,\"cases\":[%s],\"best_speedup\":%.3f,\"batch1_identical\":%b}"
      knobs.Eval.Batching.batch_size knobs.Eval.Batching.pipeline
      knobs.Eval.Batching.group_commit
      (String.concat "," (List.map fst results))
      best identical,
    best >= 5.0 && violations = 0 && identical )

(* Chaos campaign wall-clock at 1 vs N domains, plus the determinism
   claim the driver makes: rendered output must be byte-identical. *)
let campaign_hotpath () =
  let campaign domains =
    wall (fun () ->
        Eval.Chaos.run ~n:15 ~clients:2 ~ops:8 ~horizon:800.0
          ~schedules:[ Eval.Chaos.crashes_schedule; Eval.Chaos.loss_schedule ]
          ~domains ())
  in
  let c1, w1 = campaign 1 in
  let nd = max 2 (Eval.Parallel.default_domains ()) in
  let cn, wn = campaign nd in
  let identical =
    Eval.Chaos.table c1 = Eval.Chaos.table cn
    && Eval.Chaos.parity_table c1 = Eval.Chaos.parity_table cn
  in
  let cells = List.length c1.Eval.Chaos.cells in
  Printf.printf
    "  campaign (%d cells): %.2fs at 1 domain, %.2fs at %d domains (%.2fx), output %s\n"
    cells w1 wn nd
    (if wn <= 0.0 then 0.0 else w1 /. wn)
    (if identical then "byte-identical" else "DIVERGED");
  ( Printf.sprintf
      "{\"cells\":%d,\"wall_s_1_domain\":%.4f,\"domains\":%d,\"wall_s_n_domains\":%.4f,\"speedup\":%.3f,\"identical\":%b}"
      cells w1 nd wn
      (if wn <= 0.0 then 0.0 else w1 /. wn)
      identical,
    identical )

(* Zipfian shard-imbalance probe: one S=16 cell at θ=0.99, the compact
   form of the skew report the shard campaign (--shard) expands on. *)
let shard_hotpath () =
  let name = Arbitrary.Config.Arbitrary in
  let n = Eval.Config_metrics.feasible_n name 9 in
  let proto = Eval.Config_metrics.protocol_of name ~n in
  let s = Replication.Harness.default_scenario ~proto in
  let base =
    {
      s with
      Replication.Harness.n_clients = 32;
      ops_per_client = 16;
      read_fraction = 0.5;
      key_space = 1024;
      zipf_theta = 0.99;
      think_time = 0.1;
      seed = 11;
    }
  in
  let sc =
    {
      Replication.Shard_harness.base;
      shards = 16;
      strategy = Arbitrary.Shard_map.Hash;
      service_time = 0.0;
      shard_failures = [];
      reconfig = [];
    }
  in
  let r, w = wall (fun () -> Replication.Shard_harness.run sc) in
  let imb_max, imb_mean = Replication.Shard_harness.imbalance r in
  let ratio = Replication.Shard_harness.imbalance_ratio r in
  let violations =
    r.Replication.Shard_harness.agg.Replication.Harness.safety_violations
  in
  Printf.printf
    "  shard skew (S=16, zipf 0.99): per-shard ops max %.0f mean %.1f \
     imbalance %.2fx, %d violations (%.2fs)\n"
    imb_max imb_mean ratio violations w;
  ( Printf.sprintf
      "{\"shards\":16,\"zipf_theta\":0.99,\"ops_max\":%.0f,\"ops_mean\":%.2f,\"imbalance_ratio\":%.3f,\"violations\":%d}"
      imb_max imb_mean ratio violations,
    violations = 0 )

let hotpath_json_valid json =
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  String.length json > 2
  && String.sub json 0 1 = "{"
  && json.[String.length json - 1] = '}'
  && contains "\"schema\":\"bench-hotpath/2\""
  && contains "\"quorum\""
  && contains "\"e2e\""
  && contains "\"alloc\""
  && contains "\"pipeline\""
  && contains "\"batch\""
  && contains "\"campaign\""
  && contains "\"shard\""

let hotpath_section () =
  hr "B1 | Hot paths: plan cache, simulator throughput, multicore campaign";
  let quorum_json, cache_floor_ok = quorum_hotpath () in
  let e2e_json, e2e_ok = e2e_hotpath () in
  let alloc_json, alloc_ok = alloc_hotpath () in
  let pipeline_json, pipeline_ok = pipeline_hotpath () in
  let batch_json, batch_ok = batch_hotpath () in
  let campaign_json, identical = campaign_hotpath () in
  let shard_json, shard_ok = shard_hotpath () in
  let json =
    Printf.sprintf
      "{\"schema\":\"bench-hotpath/2\",\"cores\":%d,\"quorum\":%s,\"e2e\":%s,\"alloc\":%s,\"pipeline\":%s,\"batch\":%s,\"campaign\":%s,\"shard\":%s}"
      (Domain.recommended_domain_count ())
      quorum_json e2e_json alloc_json pipeline_json batch_json campaign_json
      shard_json
  in
  let oc = open_out hotpath_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  let valid = hotpath_json_valid json in
  Printf.printf "wrote %s (%d bytes, structural check %s)\n" hotpath_path
    (String.length json + 1)
    (if valid then "OK" else "FAILED");
  (* Gated claims: the cached path must not be slower than the reference
     it replaced; minor-heap words/op must be at least halved vs the
     recorded seed numbers ([Gc.minor_words] is deterministic, so this
     holds on any machine); pipelined reads must reproduce the barrier
     results exactly; e2e throughput must beat the recorded seed rate
     >= 1.3x on some config (the one same-box wall-clock gate — the seed
     column was measured by this probe on the reference box); batching
     must deliver its relative speedup without safety violations;
     parallel output must match sequential output; the skew probe must
     stay violation-free; and the payload must be well-formed. *)
  if
    not
      (valid && cache_floor_ok && e2e_ok && alloc_ok && pipeline_ok
     && batch_ok && identical && shard_ok)
  then begin
    print_endline "HOTPATH GATE FAILED";
    exit 1
  end

(* --- shard-scaling benchmark (BENCH_shard.json) -------------------------- *)

let shard_path = "BENCH_shard.json"

let shard_json_valid json =
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  String.length json > 2
  && String.sub json 0 1 = "{"
  && json.[String.length json - 1] = '}'
  && contains "\"schema\":\"bench-shard/1\""
  && contains "\"scaling\""
  && contains "\"speedup_s16\""
  && contains "\"skew\""
  && contains "\"identity\""
  && contains "\"atomicity\""
  && contains "\"reconfig\""
  && contains "\"pass\""

let shard_section () =
  hr "S1 | Shard scaling: multi-tree control plane over one engine";
  let campaign, w = wall (fun () -> Eval.Sharding.run ()) in
  print_string (Eval.Sharding.table campaign);
  Printf.printf "\ncampaign wall-clock %.2fs\n" w;
  let json = Eval.Sharding.json campaign in
  let oc = open_out shard_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  let valid = shard_json_valid json in
  Printf.printf "wrote %s (%d bytes, structural check %s)\n" shard_path
    (String.length json + 1)
    (if valid then "OK" else "FAILED");
  let v = Eval.Sharding.gate campaign in
  List.iter (Printf.printf "  GATE: %s\n") v.Eval.Sharding.failures;
  if not (valid && v.Eval.Sharding.pass) then begin
    print_endline "SHARD GATE FAILED";
    exit 1
  end

(* --- bechamel micro-benchmarks ------------------------------------------ *)

let bench_tests () =
  let rng = Dsutil.Rng.create 7 in
  let tree = Arbitrary.Config.algorithm1 ~n:100 in
  let proto = Arbitrary.Quorums.protocol tree in
  let alive = Quorum.Protocol.all_alive proto in
  let tq = Quorum.Tree_quorum.create ~height:6 in
  let tq_alive = Quorum.Protocol.all_alive (Quorum.Tree_quorum.protocol tq) in
  let hqc = Quorum.Hqc.create ~depth:4 in
  let hqc_alive = Quorum.Protocol.all_alive (Quorum.Hqc.protocol hqc) in
  let fig1 = Arbitrary.Tree.figure1 () in
  let fig1_reads =
    Quorum.Quorum_set.create ~universe:8
      (List.of_seq (Arbitrary.Quorums.enumerate_read_quorums fig1))
  in
  [
    Test.make ~name:"T1: figure-1 analytic summary"
      (Staged.stage (fun () -> Arbitrary.Analysis.summarize fig1 ~p:0.7));
    Test.make ~name:"F2: config metrics at n=513"
      (Staged.stage (fun () ->
           List.map
             (fun c -> Eval.Config_metrics.compute c ~n:513 ~p:0.7)
             Arbitrary.Config.all_names));
    Test.make ~name:"F3/F4: algorithm-1 tree build (n=10000)"
      (Staged.stage (fun () -> Arbitrary.Config.algorithm1 ~n:10000));
    Test.make ~name:"arbitrary read-quorum assembly (n=100)"
      (Staged.stage (fun () -> Arbitrary.Quorums.read_quorum tree ~alive ~rng));
    Test.make ~name:"arbitrary write-quorum assembly (n=100)"
      (Staged.stage (fun () -> Arbitrary.Quorums.write_quorum tree ~alive ~rng));
    Test.make ~name:"tree-quorum assembly (n=127)"
      (Staged.stage (fun () ->
           Quorum.Tree_quorum.read_quorum tq ~alive:tq_alive ~rng));
    Test.make ~name:"HQC assembly (n=81)"
      (Staged.stage (fun () -> Quorum.Hqc.read_quorum hqc ~alive:hqc_alive ~rng));
    Test.make ~name:"P3: LP optimal load (figure-1 reads)"
      (Staged.stage (fun () -> Analysis.Load_lp.optimal_load fig1_reads));
    Test.make ~name:"A1: end-to-end simulation (1 client, 20 ops)"
      (Staged.stage (fun () ->
           let s = Replication.Harness.default_scenario ~proto in
           Replication.Harness.run
             { s with Replication.Harness.n_clients = 1; ops_per_client = 20 }));
    Test.make ~name:"txn harness (1 client, 10 increment txns)"
      (Staged.stage (fun () ->
           let s = Replication.Txn_harness.default_scenario ~proto in
           Replication.Txn_harness.run
             { s with Replication.Txn_harness.n_clients = 1; txns_per_client = 10 }));
  ]

let run_benchmarks () =
  hr "Micro-benchmarks (bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"repro" ~fmt:"%s %s" (bench_tests ()))
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if ns < 1_000.0 then Printf.printf "%-55s %10.1f ns/run\n" name ns
      else if ns < 1_000_000.0 then
        Printf.printf "%-55s %10.2f us/run\n" name (ns /. 1_000.0)
      else Printf.printf "%-55s %10.2f ms/run\n" name (ns /. 1_000_000.0))
    (List.sort compare !rows)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let hotpath_only = Array.exists (( = ) "--hotpath") Sys.argv in
  let shard_only = Array.exists (( = ) "--shard") Sys.argv in
  if smoke then baseline_section ()
  else if hotpath_only then hotpath_section ()
  else if shard_only then shard_section ()
  else begin
    analytic_sections ();
    planner_section ();
    simulation_sections ();
    txn_section ();
    placement_section ();
    generalized_section ();
    baseline_section ();
    hotpath_section ();
    shard_section ();
    run_benchmarks ();
    print_newline ()
  end
