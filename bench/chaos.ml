(* Chaos-campaign runner: crash/partition/loss schedules × the four paper
   tree configurations × oracle vs heartbeat failure detection.

     dune exec bench/chaos.exe            # full campaign (32 cells)
     dune exec bench/chaos.exe -- --smoke # CI budget (8 cells, seeded)

   Exit status is non-zero when any cell records a safety violation or
   when the heartbeat detector's success rate falls more than 10 points
   behind the oracle's on the crash-only schedule — the campaign is a
   gate, not just a report. *)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let campaign =
    if smoke then
      Eval.Chaos.run ~n:45 ~clients:3 ~ops:20 ~horizon:3000.0
        ~schedules:[ Eval.Chaos.crashes_schedule; Eval.Chaos.combined_schedule ]
        ()
    else Eval.Chaos.run ()
  in
  let label = if smoke then "smoke" else "full" in
  Printf.printf "== Chaos campaign (%s): %d cells ==\n\n" label
    (List.length campaign.Eval.Chaos.cells);
  print_string (Eval.Chaos.table campaign);
  Printf.printf "\n== Oracle vs heartbeat detection parity ==\n\n";
  print_string (Eval.Chaos.parity_table campaign);
  let gap = Eval.Chaos.crash_parity_gap campaign in
  Printf.printf
    "\ntotal safety violations: %d\nmax crash-schedule success-rate gap \
     (oracle vs heartbeat): %.4f\n"
    campaign.Eval.Chaos.safety_violations gap;
  if campaign.Eval.Chaos.safety_violations > 0 then begin
    prerr_endline "FAIL: safety violated under chaos";
    exit 1
  end;
  if gap > 0.10 then begin
    prerr_endline
      "FAIL: heartbeat detection degrades availability by more than 10 \
       points on crash-only schedules";
    exit 1
  end;
  print_endline "chaos campaign OK"
