(* Chaos-campaign runner: crash/partition/loss schedules × the four paper
   tree configurations × oracle vs heartbeat failure detection, plus the
   amnesia crash-recovery campaign (WAL + rejoin catch-up) with its
   negative control, plus the overload / metastable-failure campaign
   (bounded queues, load shedding, retry budget, circuit breaker).

     dune exec bench/chaos.exe               # full campaign (32 cells)
     dune exec bench/chaos.exe -- --smoke    # CI budget (8 cells, seeded)
     dune exec bench/chaos.exe -- --overload # overload campaign only
     dune exec bench/chaos.exe -- --churn    # membership-churn gate only

   Exit status is non-zero when any cell records a safety violation, when
   the heartbeat detector's success rate falls more than 10 points behind
   the oracle's on the crash-only schedule, when the amnesia campaign
   (durable WAL + catch-up) shows any consistency violation, when the
   negative control (async WAL, no catch-up, total blackout) fails to
   produce one, or when the overload gate fails (naive retry storm must
   collapse, budget+breaker+shedding must recover ≥90%, zero consistency
   violations) — the campaign is a gate, not just a report. *)

let overload_path = "BENCH_overload.json"
let churn_path = "BENCH_churn.json"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let overload_cell_json (c : Eval.Overload.cell) =
  let r = c.Eval.Overload.report in
  Printf.sprintf
    "{\"scenario\":\"%s\",\"mode\":\"%s\",\"pre_goodput\":%.6f,\"post_goodput\":%.6f,\"recovery\":%.4f,\"ops_ok\":%d,\"sheds\":%d,\"overload_drops\":%d,\"retries_suppressed\":%d,\"breaker_trips\":%d,\"queue_peak\":%d,\"consistency_violations\":%d}"
    (Eval.Overload.kind_to_string c.Eval.Overload.kind)
    (Eval.Overload.mode_to_string c.Eval.Overload.mode)
    c.Eval.Overload.pre_goodput c.Eval.Overload.post_goodput
    c.Eval.Overload.recovery
    (r.Replication.Harness.reads_ok + r.Replication.Harness.writes_ok)
    r.Replication.Harness.replica_sheds r.Replication.Harness.overload_drops
    r.Replication.Harness.retries_suppressed
    r.Replication.Harness.breaker_trips r.Replication.Harness.queue_peak
    c.Eval.Overload.consistency_violations

let run_overload () =
  Printf.printf "\n== Overload / metastable-failure campaign ==\n\n";
  let campaign = Eval.Overload.run () in
  print_string (Eval.Overload.table campaign);
  let verdict = Eval.Overload.gate campaign in
  let json =
    Printf.sprintf
      "{\"schema\":\"bench-overload/1\",\"cells\":[%s],\"gate\":{\"pass\":%b,\"failures\":[%s]}}"
      (String.concat ","
         (List.map overload_cell_json campaign.Eval.Overload.cells))
      verdict.Eval.Overload.pass
      (String.concat ","
         (List.map
            (fun f -> Printf.sprintf "\"%s\"" (json_escape f))
            verdict.Eval.Overload.failures))
  in
  let oc = open_out overload_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" overload_path;
  if not verdict.Eval.Overload.pass then begin
    List.iter
      (fun f -> Printf.eprintf "overload gate: %s\n" f)
      verdict.Eval.Overload.failures;
    prerr_endline "FAIL: overload gate";
    exit 1
  end;
  Printf.printf "overload gate OK\n"

let churn_cell_json (c : Eval.Churn.cell) =
  let r = c.Eval.Churn.c_report in
  Printf.sprintf
    "{\"config\":\"%s\",\"n\":%d,\"scenario\":\"%s\",\"reads_ok\":%d,\"writes_ok\":%d,\"promotions_done\":%d,\"decommissions_done\":%d,\"provision_runs\":%d,\"provision_chunks\":%d,\"provision_resumes\":%d,\"provision_donor_failovers\":%d,\"failed_rejoins\":%d,\"violations\":%d}"
    (Arbitrary.Config.name_to_string c.Eval.Churn.c_config)
    c.Eval.Churn.c_n
    (json_escape c.Eval.Churn.c_kind)
    r.Replication.Churn_harness.reads_ok r.Replication.Churn_harness.writes_ok
    r.Replication.Churn_harness.promotions_done
    r.Replication.Churn_harness.decommissions_done
    r.Replication.Churn_harness.provision_runs
    r.Replication.Churn_harness.provision_chunks
    r.Replication.Churn_harness.provision_resumes
    r.Replication.Churn_harness.provision_donor_failovers
    r.Replication.Churn_harness.failed_rejoins
    r.Replication.Churn_harness.safety_violations

(* Membership-churn smoke gate: the fenced campaign (four configs × four
   scenarios, plus the sharded run) must be violation-free, the unfenced
   blackout control must leak, and snapshot provisioning must beat per-key
   catch-up by at least 5× in protocol rounds on a cold 10k-key rejoin. *)
let run_churn () =
  Printf.printf "\n== Membership churn campaign ==\n\n";
  let fenced = Eval.Churn.run ~n:13 () in
  print_string (Eval.Churn.table fenced);
  Printf.printf "\n== Sharded churn (independent trees per shard) ==\n\n";
  let sharded = Eval.Churn.run_sharded ~n:13 () in
  print_string (Eval.Churn.table sharded);
  Printf.printf "\n== Negative control (blackout, unfenced, async WAL) ==\n\n";
  let negative = Eval.Churn.run_negative ~n:13 () in
  print_string (Eval.Churn.table negative);
  let rj = Eval.Churn.cold_rejoin_comparison () in
  Printf.printf
    "\ncold rejoin (%d keys, n=%d): catch-up %d rounds vs provisioning %d \
     rounds (%.1fx)\n"
    rj.Eval.Churn.rj_keys rj.Eval.Churn.rj_n rj.Eval.Churn.rj_catchup_rounds
    rj.Eval.Churn.rj_provision_rounds rj.Eval.Churn.rj_speedup;
  let fenced_violations =
    Eval.Churn.violations fenced + Eval.Churn.violations sharded
  in
  let negative_violations = Eval.Churn.violations negative in
  let failures = ref [] in
  if fenced_violations > 0 then
    failures :=
      Printf.sprintf "%d violations in the fenced campaign (expected 0)"
        fenced_violations
      :: !failures;
  if negative_violations = 0 then
    failures :=
      "negative control leaked nothing — the churn oracle is not catching \
       stale reads"
      :: !failures;
  if not (rj.Eval.Churn.rj_catchup_serving && rj.Eval.Churn.rj_provision_serving)
  then failures := "a cold rejoin failed to reach serving" :: !failures;
  if rj.Eval.Churn.rj_speedup < 5.0 then
    failures :=
      Printf.sprintf "cold-rejoin speedup %.1fx below the 5x gate"
        rj.Eval.Churn.rj_speedup
      :: !failures;
  let failures = List.rev !failures in
  let pass = failures = [] in
  let json =
    Printf.sprintf
      "{\"schema\":\"bench-churn/1\",\"cells\":[%s],\"cold_rejoin\":{\"keys\":%d,\"catchup_rounds\":%d,\"provision_rounds\":%d,\"speedup\":%.4f},\"negative_violations\":%d,\"gate\":{\"pass\":%b,\"failures\":[%s]}}"
      (String.concat ","
         (List.map churn_cell_json (fenced @ sharded @ negative)))
      rj.Eval.Churn.rj_keys rj.Eval.Churn.rj_catchup_rounds
      rj.Eval.Churn.rj_provision_rounds rj.Eval.Churn.rj_speedup
      negative_violations pass
      (String.concat ","
         (List.map (fun f -> Printf.sprintf "\"%s\"" (json_escape f)) failures))
  in
  let oc = open_out churn_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" churn_path;
  if not pass then begin
    List.iter (fun f -> Printf.eprintf "churn gate: %s\n" f) failures;
    prerr_endline "FAIL: churn gate";
    exit 1
  end;
  Printf.printf "churn gate OK\n"

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  if Array.exists (( = ) "--churn") Sys.argv then begin
    run_churn ();
    exit 0
  end;
  if Array.exists (( = ) "--overload") Sys.argv then begin
    run_overload ();
    exit 0
  end;
  let campaign =
    if smoke then
      Eval.Chaos.run ~n:45 ~clients:3 ~ops:20 ~horizon:3000.0
        ~schedules:[ Eval.Chaos.crashes_schedule; Eval.Chaos.combined_schedule ]
        ()
    else Eval.Chaos.run ()
  in
  let label = if smoke then "smoke" else "full" in
  Printf.printf "== Chaos campaign (%s): %d cells ==\n\n" label
    (List.length campaign.Eval.Chaos.cells);
  print_string (Eval.Chaos.table campaign);
  Printf.printf "\n== Oracle vs heartbeat detection parity ==\n\n";
  print_string (Eval.Chaos.parity_table campaign);
  let gap = Eval.Chaos.crash_parity_gap campaign in
  Printf.printf
    "\ntotal safety violations: %d\nmax crash-schedule success-rate gap \
     (oracle vs heartbeat): %.4f\n"
    campaign.Eval.Chaos.safety_violations gap;
  Printf.printf "\n== Amnesia crash-recovery campaign ==\n\n";
  let amnesia = Eval.Chaos.run_amnesia () in
  print_string (Eval.Chaos.amnesia_table amnesia);
  let amnesia_violations = Eval.Chaos.amnesia_violations amnesia in
  Printf.printf "\namnesia (durable WAL + catch-up) violations: %d\n"
    amnesia_violations;
  Printf.printf "\n== Negative control (async WAL, no catch-up) ==\n\n";
  let negative = Eval.Chaos.run_amnesia_negative () in
  print_string (Eval.Chaos.amnesia_table negative);
  let negative_violations = Eval.Chaos.amnesia_violations negative in
  Printf.printf "\nnegative-control violations: %d (must be >= 1)\n"
    negative_violations;
  if campaign.Eval.Chaos.safety_violations > 0 then begin
    prerr_endline "FAIL: safety violated under chaos";
    exit 1
  end;
  if gap > 0.10 then begin
    prerr_endline
      "FAIL: heartbeat detection degrades availability by more than 10 \
       points on crash-only schedules";
    exit 1
  end;
  if amnesia_violations > 0 then begin
    prerr_endline
      "FAIL: consistency violated under amnesia crashes despite durable \
       WAL and quorum catch-up";
    exit 1
  end;
  if negative_violations = 0 then begin
    prerr_endline
      "FAIL: negative control detected no violations — the consistency \
       checker is not catching lost writes";
    exit 1
  end;
  run_overload ();
  print_endline "chaos campaign OK"
