(* Chaos-campaign runner: crash/partition/loss schedules × the four paper
   tree configurations × oracle vs heartbeat failure detection, plus the
   amnesia crash-recovery campaign (WAL + rejoin catch-up) with its
   negative control.

     dune exec bench/chaos.exe            # full campaign (32 cells)
     dune exec bench/chaos.exe -- --smoke # CI budget (8 cells, seeded)

   Exit status is non-zero when any cell records a safety violation, when
   the heartbeat detector's success rate falls more than 10 points behind
   the oracle's on the crash-only schedule, when the amnesia campaign
   (durable WAL + catch-up) shows any consistency violation, or when the
   negative control (async WAL, no catch-up, total blackout) fails to
   produce one — the campaign is a gate, not just a report. *)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let campaign =
    if smoke then
      Eval.Chaos.run ~n:45 ~clients:3 ~ops:20 ~horizon:3000.0
        ~schedules:[ Eval.Chaos.crashes_schedule; Eval.Chaos.combined_schedule ]
        ()
    else Eval.Chaos.run ()
  in
  let label = if smoke then "smoke" else "full" in
  Printf.printf "== Chaos campaign (%s): %d cells ==\n\n" label
    (List.length campaign.Eval.Chaos.cells);
  print_string (Eval.Chaos.table campaign);
  Printf.printf "\n== Oracle vs heartbeat detection parity ==\n\n";
  print_string (Eval.Chaos.parity_table campaign);
  let gap = Eval.Chaos.crash_parity_gap campaign in
  Printf.printf
    "\ntotal safety violations: %d\nmax crash-schedule success-rate gap \
     (oracle vs heartbeat): %.4f\n"
    campaign.Eval.Chaos.safety_violations gap;
  Printf.printf "\n== Amnesia crash-recovery campaign ==\n\n";
  let amnesia = Eval.Chaos.run_amnesia () in
  print_string (Eval.Chaos.amnesia_table amnesia);
  let amnesia_violations = Eval.Chaos.amnesia_violations amnesia in
  Printf.printf "\namnesia (durable WAL + catch-up) violations: %d\n"
    amnesia_violations;
  Printf.printf "\n== Negative control (async WAL, no catch-up) ==\n\n";
  let negative = Eval.Chaos.run_amnesia_negative () in
  print_string (Eval.Chaos.amnesia_table negative);
  let negative_violations = Eval.Chaos.amnesia_violations negative in
  Printf.printf "\nnegative-control violations: %d (must be >= 1)\n"
    negative_violations;
  if campaign.Eval.Chaos.safety_violations > 0 then begin
    prerr_endline "FAIL: safety violated under chaos";
    exit 1
  end;
  if gap > 0.10 then begin
    prerr_endline
      "FAIL: heartbeat detection degrades availability by more than 10 \
       points on crash-only schedules";
    exit 1
  end;
  if amnesia_violations > 0 then begin
    prerr_endline
      "FAIL: consistency violated under amnesia crashes despite durable \
       WAL and quorum catch-up";
    exit 1
  end;
  if negative_violations = 0 then begin
    prerr_endline
      "FAIL: negative control detected no violations — the consistency \
       checker is not catching lost writes";
    exit 1
  end;
  print_endline "chaos campaign OK"
